"""Python ↔ kernel marshalling for the native traversal impl.

Two object layers bridge the gap between the pure-Python analyses and
the C kernel in ``kernel.c``:

* :class:`_NativeGraph` — one per :class:`~repro.pag.csr.CsrImage`,
  cached on ``image._native``.  Hands the kernel borrowed pointers to
  the 26 CSR arrays (``array('i')`` copies for mmap images, whose
  ``memoryview`` rows are read-only and unaddressable through ctypes),
  plus the token tables and the **sort ranks**: the Python-computed
  ordinal of every node's ``sort_key`` and every token tuple, which
  make the kernel's boundary sort order-isomorphic to
  :func:`~repro.analysis.ppta._boundary_order` without ever comparing
  Python objects in C.  It also owns the py↔C translation caches for
  hash-consed stacks — both sides intern, so the mapping is a pair of
  dicts that only ever grows along push chains.
* :class:`_NativeSession` — one per ``(SummaryCache, image)`` pair,
  cached on ``cache._native_memo``.  Mirrors the cache's ``_entries``
  into the kernel's summary table (delta-synced by entry count: the
  plain cache only ever appends) so the kernel can probe and commit
  summaries without calling back into Python.

Everything here is **refuse-and-fall-back**: any state the kernel
cannot represent (a stack value outside int32, a foreign token in an
imported boundary, kernel OOM) returns ``None``/``False`` to the
dispatch layer, which reruns the query on the pure-Python ``array``
impl — answers and step counts never depend on the kernel being
usable, only latency does.
"""

from array import array
from ctypes import POINTER, byref, c_int32, cast

from repro.native.binding import (
    _GRAPH_ERRORS,
    N_ARRAYS,
    RK_ABI_VERSION,
    availability,
    load_kernel,
)

_PI32 = POINTER(c_int32)
_INT32_MIN = -(2 ** 31)
_INT32_MAX = 2 ** 31 - 1

# Deferred to call time in the hot helpers would be wasted work: by the
# time this module is imported (always from inside repro.analysis), the
# analysis modules are fully initialized, so top-level imports are safe
# and there is no cycle — ppta/dynsum never import this module at
# module level.
from repro.analysis.ppta import PptaResult, _boundary_order, _object_order
from repro.cfl.rsm import FAM_LOAD, S1
from repro.cfl.stacks import EMPTY_STACK
from repro.util.errors import BudgetExceededError


def _addr(int_array):
    """A ``POINTER(c_int32)`` over an ``array('i')`` buffer."""
    return cast(int_array.buffer_info()[0], _PI32)


def _as_int_array(data):
    """``data`` as an addressable ``array('i')`` (zero-copy when it
    already is one — the compiled-image case)."""
    if isinstance(data, array):
        return data
    copy = array("i")
    copy.frombytes(data.tobytes())
    return copy


class _NativeGraph:
    """The kernel-side twin of one CSR image (see module docstring)."""

    __slots__ = (
        "lib",
        "image",
        "handle",
        "keep",
        "tok_index",
        "tokens_by_id",
        "n_image_tokens",
        "fs_py2c",
        "fs_c2py",
        "cs_py2c",
        "cs_c2py",
        "broken",
    )

    def __init__(self, lib, image, handle, keep, tok_index, tokens_by_id):
        self.lib = lib
        self.image = image
        self.handle = handle
        #: Buffers the kernel borrows pointers into — kept alive here.
        self.keep = keep
        self.tok_index = tok_index
        self.tokens_by_id = tokens_by_id
        #: Ids below this are the image's own tokens; at or above are
        #: synthetics registered for standalone-PPTA start stacks
        #: (rank 0 — they never reach a session's boundary sort).
        self.n_image_tokens = len(tokens_by_id)
        self.fs_py2c = {EMPTY_STACK: 0}
        self.fs_c2py = {0: EMPTY_STACK}
        self.cs_py2c = {EMPTY_STACK: 0}
        self.cs_c2py = {0: EMPTY_STACK}
        #: A reason string once the kernel handle is poisoned (OOM) —
        #: :func:`graph_for` retires the graph and falls back.
        self.broken = None

    def __del__(self):
        try:
            if self.handle:
                self.lib.rk_graph_free(self.handle)
                self.handle = None
        except Exception:
            pass  # interpreter teardown

    # ------------------------------------------------------------------
    # token registration
    # ------------------------------------------------------------------
    def _add_token(self, token):
        """Register a non-image token (standalone start stacks only).

        Mirrors the ``array`` impl's treatment of foreign tokens: the
        field id is ``tok_fid.get(token, -1)`` — so a token the image
        never interned matches no load/store row — and only the
        ``FAM_LOAD`` family bit matters.
        """
        try:
            fam = 0 if token[1] == FAM_LOAD else 1
        except (TypeError, IndexError, KeyError):
            return None
        try:
            fid = self.image.tok_fid.get(token, -1)
        except TypeError:  # unhashable token — cannot key the map either
            return None
        if not isinstance(fid, int) or not _INT32_MIN <= fid <= _INT32_MAX:
            return None
        tid = self.lib.rk_graph_add_token(self.handle, fid, fam)
        if tid < 0:
            self.broken = "kernel out of memory"
            return None
        self.tok_index[token] = tid
        self.tokens_by_id.append(token)
        return tid

    # ------------------------------------------------------------------
    # stack translation (both directions memoized along push chains)
    # ------------------------------------------------------------------
    def fstack_to_c(self, stack, image_only=False):
        """The kernel id of ``stack``; ``None`` when unrepresentable.

        ``image_only`` refuses tokens outside the image's own table —
        required for session imports, where a foreign token would break
        the worklist invariant the boundary sort relies on.
        """
        py2c = self.fs_py2c
        got = py2c.get(stack)
        if got is not None:
            if image_only and not self._image_only(stack):
                return None
            return got
        chain = []
        s = stack
        while True:
            cached = py2c.get(s)
            if cached is not None:
                cid = cached
                break
            chain.append(s)
            s = s._rest
        tok_index = self.tok_index
        limit = self.n_image_tokens
        push = self.lib.rk_fstack_push
        handle = self.handle
        c2py = self.fs_c2py
        for s2 in reversed(chain):
            token = s2._top
            tid = tok_index.get(token)
            if tid is None:
                if image_only:
                    return None
                tid = self._add_token(token)
                if tid is None:
                    return None
            elif image_only and tid >= limit:
                return None
            cid = push(handle, cid, tid)
            if cid < 0:
                self.broken = "kernel out of memory"
                return None
            py2c[s2] = cid
            c2py.setdefault(cid, s2)
        return cid

    def _image_only(self, stack):
        tok_index = self.tok_index
        limit = self.n_image_tokens
        s = stack
        while s._rest is not None:
            tid = tok_index.get(s._top)
            if tid is None or tid >= limit:
                return False
            s = s._rest
        return True

    def fstack_from_c(self, cid):
        c2py = self.fs_c2py
        got = c2py.get(cid)
        if got is not None:
            return got
        lib = self.lib
        handle = self.handle
        chain = []
        c = cid
        while c not in c2py:
            chain.append(c)
            c = lib.rk_fstack_parent(handle, c)
        stack = c2py[c]
        tokens = self.tokens_by_id
        py2c = self.fs_py2c
        for c2 in reversed(chain):
            stack = stack.push(tokens[lib.rk_fstack_value(handle, c2)])
            c2py[c2] = stack
            py2c.setdefault(stack, c2)
        return stack

    def cstack_to_c(self, stack):
        py2c = self.cs_py2c
        got = py2c.get(stack)
        if got is not None:
            return got
        chain = []
        s = stack
        while True:
            cached = py2c.get(s)
            if cached is not None:
                cid = cached
                break
            chain.append(s)
            s = s._rest
        push = self.lib.rk_cstack_push
        handle = self.handle
        c2py = self.cs_c2py
        for s2 in reversed(chain):
            site = s2._top
            if not isinstance(site, int) or not _INT32_MIN <= site <= _INT32_MAX:
                return None  # a call site the kernel cannot carry
            cid = push(handle, cid, site)
            if cid < 0:
                self.broken = "kernel out of memory"
                return None
            py2c[s2] = cid
            c2py.setdefault(cid, s2)
        return cid

    def cstack_from_c(self, cid):
        c2py = self.cs_c2py
        got = c2py.get(cid)
        if got is not None:
            return got
        lib = self.lib
        handle = self.handle
        chain = []
        c = cid
        while c not in c2py:
            chain.append(c)
            c = lib.rk_cstack_parent(handle, c)
        stack = c2py[c]
        py2c = self.cs_py2c
        for c2 in reversed(chain):
            stack = stack.push(lib.rk_cstack_value(handle, c2))
            c2py[c2] = stack
            py2c.setdefault(stack, c2)
        return stack


def _build_graph(lib, image):
    """A :class:`_NativeGraph` over ``image``, or a reason string."""
    from repro.pag.csr import _ARRAY_NAMES, KERNEL_ABI_VERSION

    abi = getattr(image, "kernel_abi", None)
    if abi != KERNEL_ABI_VERSION:
        if abi is None:
            return "snapshot predates the kernel ABI stamp; regenerate it"
        return (
            f"snapshot kernel ABI {abi} does not match this build's "
            f"{KERNEL_ABI_VERSION}"
        )
    if abi != RK_ABI_VERSION:  # csr.py and binding.py must agree
        return "kernel ABI constants disagree across modules"
    n = image.n_nodes
    if n >= 2 ** 29:  # index * 4 + state must stay in int32
        return f"image too large for the kernel ({n} nodes)"
    keep = []
    pointers = (_PI32 * N_ARRAYS)()
    counts = (c_int32 * N_ARRAYS)()
    for i, name in enumerate(_ARRAY_NAMES):
        buf = _as_int_array(getattr(image, name))
        keep.append(buf)
        pointers[i] = _addr(buf)
        counts[i] = len(buf)
    flags = bytes(image.flags)
    keep.append(flags)

    tokens = image.tokens
    tok_fid_map = image.tok_fid
    tok_fid = array("i", [tok_fid_map.get(t, -1) for t in tokens])
    tok_fam = array("i", [0 if t[1] == FAM_LOAD else 1 for t in tokens])
    tok_rank = array("i", [0] * len(tokens))
    for pos, idx in enumerate(sorted(range(len(tokens)), key=tokens.__getitem__)):
        tok_rank[idx] = pos
    nodes = image.nodes
    node_rank = array("i", [0] * n)
    order = sorted(range(n), key=lambda i: nodes[i].sort_key)
    for pos, idx in enumerate(order):
        node_rank[idx] = pos
    keep.extend((tok_fid, tok_fam, tok_rank, node_rank))

    err = c_int32(0)
    handle = lib.rk_graph_new(
        n,
        pointers,
        counts,
        flags,
        len(tokens),
        _addr(tok_fid),
        _addr(tok_fam),
        _addr(tok_rank),
        _addr(node_rank),
        byref(err),
    )
    if not handle:
        return _GRAPH_ERRORS.get(err.value, f"kernel rejected the image ({err.value})")
    tok_index = {token: i for i, token in enumerate(tokens)}
    return _NativeGraph(lib, image, handle, keep, tok_index, list(tokens))


def graph_for(pag):
    """The native twin of ``pag``'s CSR image, or ``None`` (fall back).

    The outcome — graph or reason — is cached on ``image._native``; a
    poisoned graph (kernel OOM) is retired here, replacing the cached
    graph with its reason so later calls fail fast.
    """
    lib, _reason = load_kernel()
    if lib is None:
        return None
    image = pag.csr()
    native = image._native
    if native is None:
        native = _build_graph(lib, image)
        image._native = native
    if type(native) is not _NativeGraph:
        return None  # a cached reason string
    if native.broken is not None:
        image._native = native.broken
        return None
    return native


def native_unavailable_reason(pag=None):
    """Why the native impl would fall back right now, or ``None``.

    Reports the binding-level reason (no compiler, disabled, ABI
    mismatch) first; with a ``pag`` whose CSR image has already been
    refused by the kernel, that image-level reason instead.
    """
    ok, reason = availability()
    if not ok:
        return reason
    if pag is not None:
        image = pag._csr
        if image is not None:
            native = getattr(image, "_native", None)
            if isinstance(native, str):
                return native
    return None


# ----------------------------------------------------------------------
# standalone PPTA (the ``traversal_impl("native")`` ppta driver)
# ----------------------------------------------------------------------
def run_ppta_native(pag, node, field_stack, state, budget, max_field_depth=None):
    """One ``DSPOINTSTO`` in the kernel; ``None`` means fall back.

    Bit-parity contract with :func:`~repro.analysis.ppta._run_ppta_array`:
    ``budget.steps`` lands on exactly the same value on every path
    (normal, budget abort, depth abort), aborts raise the same
    :class:`BudgetExceededError`, and the fact lists sort under the
    same structural keys.  On fallback the budget is untouched — the
    pure-Python rerun proceeds as if this call never happened.
    """
    ng = graph_for(pag)
    if ng is None:
        return None
    f0 = ng.fstack_to_c(field_stack)
    if f0 is None:
        return None
    image = ng.image
    lib = ng.lib
    steps_before = budget.steps
    limit = budget.limit
    res = lib.rk_ppta(
        ng.handle,
        image.node_index.get(node, image.n_nodes) * 4 + state,
        f0,
        steps_before,
        -1 if limit is None else limit,
        -1 if max_field_depth is None else max_field_depth,
    )
    if not res:
        ng.broken = "kernel out of memory"
        return None
    try:
        r = res.contents
        if r.status < 0:
            ng.broken = "kernel out of memory"
            return None
        total = r.total
        budget.steps = total
        if r.status == 1:
            raise BudgetExceededError(limit)
        nodes = image.nodes
        robj = r.objects
        objects = [nodes[robj[i]] for i in range(r.n_objects)]
        b_t = r.b_t
        b_f = r.b_f
        from_c = ng.fstack_from_c
        boundaries = [
            (nodes[b_t[i] >> 2], from_c(b_f[i]), b_t[i] & 3)
            for i in range(r.n_boundaries)
        ]
    finally:
        lib.rk_ppta_free(res)
    return PptaResult(
        sorted(objects, key=_object_order) if len(objects) > 1 else objects,
        sorted(boundaries, key=_boundary_order) if len(boundaries) > 1 else boundaries,
        steps=total - steps_before,
    )


# ----------------------------------------------------------------------
# the DYNSUM session
# ----------------------------------------------------------------------
class _NativeSession:
    """A kernel summary table mirroring one plain ``SummaryCache``."""

    __slots__ = ("graph", "handle", "synced")

    def __init__(self, graph, handle):
        self.graph = graph  # strong ref: the graph must outlive us
        self.handle = handle

    def __del__(self):
        try:
            if self.handle:
                self.graph.lib.rk_session_free(self.handle)
                self.handle = None
        except Exception:
            pass  # interpreter teardown


def _session_for(ng, cache):
    """The kernel session mirroring ``cache``, delta-synced; ``None``
    refuses native for this cache (the reason is cached so later
    queries fail fast rather than re-importing)."""
    image = ng.image
    memo = cache._native_memo
    if memo is not None and memo[0] is image:
        sess = memo[1]
        if sess is None:
            return None  # previously refused (unrepresentable entry)
    else:
        handle = ng.lib.rk_session_new(ng.handle)
        if not handle:
            ng.broken = "kernel out of memory"
            return None
        sess = _NativeSession(ng, handle)
        sess.synced = 0
        cache._native_memo = (image, sess)
    entries = cache._entries
    count = len(entries)
    if sess.synced < count:
        items = list(entries.items())[sess.synced :]
        for (node, fstack, state), summary in items:
            if not _import_entry(ng, sess, node, fstack, state, summary):
                if ng.broken is not None:
                    cache._native_memo = None
                else:
                    cache._native_memo = (image, None)
                return None
        sess.synced = count
    return sess


def _import_entry(ng, sess, node, fstack, state, summary):
    """Mirror one Python cache entry into the kernel table.

    Entries the kernel can never be asked about — keys whose node is
    not in the image, or whose stack uses non-image tokens (the native
    worklist only ever carries image tokens) — are skipped, not
    imported.  Entries it *could* be asked about but cannot represent
    (foreign boundary tokens, unindexed objects) refuse the whole
    session: a partial mirror would make probes miss where Python hits,
    diverging step counts.
    """
    image = ng.image
    index_get = image.node_index.get
    si = index_get(node)
    if si is None:
        return True  # unreachable natively: skip
    f = ng.fstack_to_c(fstack, image_only=True)
    if f is None:
        if ng.broken is not None:
            return False
        return True  # foreign key token: never probed natively
    n = image.n_nodes
    objs = []
    for obj in summary.objects:
        oi = index_get(obj)
        if oi is None:
            return False  # cannot emit this object as an index
        objs.append(oi)
    b_t = []
    b_f = []
    for x, bfs, bstate in summary.boundaries:
        bf = ng.fstack_to_c(bfs, image_only=True)
        if bf is None:
            return False
        b_t.append(index_get(x, n) * 4 + bstate)
        b_f.append(bf)
    n_obj = len(objs)
    n_b = len(b_t)
    rc = ng.graph.lib.rk_summary_put(
        sess.handle,
        si * 4 + state,
        f,
        summary.steps,
        n_obj,
        (c_int32 * n_obj)(*objs) if n_obj else None,
        n_b,
        (c_int32 * n_b)(*b_t) if n_b else None,
        (c_int32 * n_b)(*b_f) if n_b else None,
    )
    if rc != 0:
        ng.broken = "kernel out of memory"
        return False
    return True


def explore_native(analysis, var, context, pairs, budget):
    """Run one DYNSUM worklist in the kernel.

    Returns ``True`` when the query was fully handled (pairs added,
    budget synced, new summaries exported back into the Python cache —
    raising :class:`BudgetExceededError` exactly where the ``array``
    impl would), or ``False`` to make the caller rerun on the
    pure-Python path with all Python-side state untouched.
    """
    from repro.analysis.summaries import SummaryCache

    cache = analysis.cache
    if type(cache) is not SummaryCache:
        return False  # bounded/sharded/remote caches stay pure-Python
    ng = graph_for(analysis.pag)
    if ng is None:
        return False
    sess = _session_for(ng, cache)
    if sess is None:
        return False
    ctx0 = ng.cstack_to_c(context)
    if ctx0 is None:
        return False
    image = ng.image
    config = analysis.config
    track = config.track_heap_contexts
    max_depth = config.max_field_depth
    limit = budget.limit
    res = ng.lib.rk_dynsum(
        sess.handle,
        image.node_index.get(var, image.n_nodes) * 4 + S1,
        ctx0,
        budget.steps,
        -1 if limit is None else limit,
        -1 if max_depth is None else max_depth,
        1 if track else 0,
    )
    if not res:
        ng.broken = "kernel out of memory"
        cache._native_memo = None
        return False
    try:
        r = res.contents
        status = r.status
        if status < 0:
            # Kernel OOM mid-run: apply nothing.  The session table may
            # hold a partial commit — retire it with the graph.
            ng.broken = "kernel out of memory"
            cache._native_memo = None
            return False
        nodes = image.nodes
        # New summaries first, in computation order, so the Python
        # cache's dict order matches what a pure-Python run would have
        # produced (snapshots iterate entries in insertion order).
        n_new = r.n_new
        if n_new:
            entries = cache._entries
            by_method = cache._by_method
            from_c = ng.fstack_from_c
            new_t = r.new_t
            new_f = r.new_f
            new_steps = r.new_steps
            obj_off = r.new_obj_off
            new_obj = r.new_obj
            b_off = r.new_b_off
            new_b_t = r.new_b_t
            new_b_f = r.new_b_f
            for i in range(n_new):
                t = new_t[i]
                node = nodes[t >> 2]
                objects = [
                    nodes[new_obj[k]] for k in range(obj_off[i], obj_off[i + 1])
                ]
                if len(objects) > 1:
                    objects.sort(key=_object_order)
                boundaries = [
                    (nodes[new_b_t[k] >> 2], from_c(new_b_f[k]), new_b_t[k] & 3)
                    for k in range(b_off[i], b_off[i + 1])
                ]
                summary = PptaResult(objects, boundaries, steps=new_steps[i])
                key = (node, from_c(new_f[i]), t & 3)
                entries[key] = summary
                cache._facts += summary.size
                method = node.method
                if method is not None:
                    by_method.setdefault(method, set()).add(key)
            sess.synced = len(entries)
        n_pairs = r.n_pairs
        if n_pairs:
            pair_obj = r.pair_obj
            pair_ctx = r.pair_ctx
            ctx_from_c = ng.cstack_from_c
            pairs_add = pairs.add
            for i in range(n_pairs):
                pairs_add((nodes[pair_obj[i]], ctx_from_c(pair_ctx[i])))
        cache.misses += r.misses
        if r.hits:
            cache.hits += r.hits
        budget.steps = r.total
    finally:
        ng.lib.rk_dyn_free(res)
    if status == 1:
        raise BudgetExceededError(limit)
    return True
