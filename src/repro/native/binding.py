"""Loader for the native traversal kernel (``kernel.c``).

The kernel is a plain shared object with no CPython dependency, found
in one of two places:

1. **Prebuilt** next to this package (``_rk*.so`` / ``_rk*.dylib`` /
   ``_rk*.pyd``) — what ``pip install`` produces via the optional
   extension in ``setup.py``.
2. **Opportunistically compiled** on first use into a per-user cache
   directory keyed by the SHA-256 of ``kernel.c`` — so a source tree
   checkout (no build step) still gets the native path when a C
   compiler is on ``PATH``.

Either way the library is loaded with :class:`ctypes.PyDLL`, which
keeps the GIL held for the duration of every call: the kernel's
per-image tables are shared across sessions and must never race, and
no kernel call ever re-enters Python.

Every failure mode is non-fatal by design — :func:`availability`
returns ``(False, reason)`` and the dispatch layer silently falls back
to the pure-Python ``array`` implementation.  Reasons surface in
engine stats as ``native_unavailable``.  ``REPRO_NATIVE=0`` disables
the kernel outright (the no-compiler CI leg uses it to prove the
fallback stays green).
"""

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from typing import List, Optional, Tuple

#: The binding's kernel ABI.  Must equal ``RK_ABI_VERSION`` in
#: ``kernel.c`` *and* :data:`repro.pag.csr.KERNEL_ABI_VERSION` (the
#: stamp written into CSR snapshot containers).  Bump all three
#: together whenever the kernel's view of the image layout changes.
RK_ABI_VERSION = 1

_I32 = ctypes.c_int32
_I64 = ctypes.c_int64
_PI32 = ctypes.POINTER(ctypes.c_int32)
_PI64 = ctypes.POINTER(ctypes.c_int64)

#: Number of CSR arrays handed to ``rk_graph_new`` —
#: ``len(repro.pag.csr._ARRAY_NAMES)``.
N_ARRAYS = 26

#: ``rk_graph_new`` error codes -> reasons.
_GRAPH_ERRORS = {
    1: "kernel out of memory",
    2: "CSR image rejected by the kernel (malformed offsets)",
    3: "CSR image rejected by the kernel (array values out of range)",
}


class RkPptaResult(ctypes.Structure):
    _fields_ = [
        ("status", _I32),
        ("n_objects", _I32),
        ("n_boundaries", _I32),
        ("_pad", _I32),
        ("total", _I64),
        ("objects", _PI32),
        ("b_t", _PI32),
        ("b_f", _PI32),
    ]


class RkDynResult(ctypes.Structure):
    _fields_ = [
        ("status", _I32),
        ("hits", _I32),
        ("misses", _I32),
        ("n_pairs", _I32),
        ("n_new", _I32),
        ("_pad", _I32),
        ("total", _I64),
        ("pair_obj", _PI32),
        ("pair_ctx", _PI32),
        ("new_t", _PI32),
        ("new_f", _PI32),
        ("new_steps", _PI64),
        ("new_obj_off", _PI32),
        ("new_obj", _PI32),
        ("new_b_off", _PI32),
        ("new_b_t", _PI32),
        ("new_b_f", _PI32),
    ]


def _kernel_source() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "kernel.c")


def _prebuilt_candidates() -> List[str]:
    here = os.path.dirname(os.path.abspath(__file__))
    out = []
    try:
        names = sorted(os.listdir(here))
    except OSError:
        return out
    for name in names:
        if name.startswith("_rk") and name.endswith((".so", ".dylib", ".pyd")):
            out.append(os.path.join(here, name))
    return out


def _cache_dir() -> str:
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-native")


def _find_compiler() -> Optional[str]:
    cc = os.environ.get("CC")
    if cc:
        found = shutil.which(cc)
        # An explicit CC that does not resolve means "no compiler" —
        # the no-compiler CI leg relies on CC=/nonexistent behaving so.
        return found
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _compile_kernel(source: str) -> Tuple[Optional[str], Optional[str]]:
    """Compile ``kernel.c`` into the cache dir; ``(path, error)``."""
    compiler = _find_compiler()
    if compiler is None:
        return None, "no C compiler found (checked $CC, cc, gcc, clang)"
    with open(source, "rb") as handle:
        digest = hashlib.sha256(handle.read()).hexdigest()[:16]
    suffix = ".dylib" if sys.platform == "darwin" else ".so"
    cache = _cache_dir()
    target = os.path.join(cache, f"rk_{digest}_abi{RK_ABI_VERSION}{suffix}")
    if os.path.exists(target):
        return target, None
    try:
        os.makedirs(cache, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=suffix, dir=cache)
        os.close(fd)
    except OSError as exc:
        return None, f"kernel cache dir unusable: {exc}"
    cmd = [compiler, "-O2", "-fPIC", "-shared", "-std=c99", "-o", tmp, source]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120, check=False
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        _unlink_quiet(tmp)
        return None, f"kernel compile failed to run: {exc}"
    if proc.returncode != 0:
        _unlink_quiet(tmp)
        detail = (proc.stderr or proc.stdout or "").strip().splitlines()
        return None, "kernel compile failed: " + (detail[0] if detail else "?")
    try:
        os.replace(tmp, target)  # atomic: racing processes agree on one file
    except OSError as exc:
        _unlink_quiet(tmp)
        return None, f"kernel cache install failed: {exc}"
    return target, None


def _unlink_quiet(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _declare(lib: ctypes.PyDLL) -> None:
    void_p = ctypes.c_void_p
    lib.rk_abi_version.argtypes = []
    lib.rk_abi_version.restype = _I32
    lib.rk_graph_new.argtypes = [
        _I32,                       # n_nodes
        ctypes.POINTER(_PI32),      # the 26 CSR arrays
        _PI32,                      # their element counts
        ctypes.c_char_p,            # flags (n + 1 bytes)
        _I32,                       # n_tokens
        _PI32, _PI32, _PI32,        # tok_fid, tok_fam, tok_rank
        _PI32,                      # node_rank
        _PI32,                      # out: error code
    ]
    lib.rk_graph_new.restype = void_p
    lib.rk_graph_free.argtypes = [void_p]
    lib.rk_graph_free.restype = None
    lib.rk_graph_add_token.argtypes = [void_p, _I32, _I32]
    lib.rk_graph_add_token.restype = _I32
    lib.rk_graph_oom.argtypes = [void_p]
    lib.rk_graph_oom.restype = _I32
    for name in ("rk_fstack_push", "rk_cstack_push"):
        fn = getattr(lib, name)
        fn.argtypes = [void_p, _I32, _I32]
        fn.restype = _I32
    for name in (
        "rk_fstack_value",
        "rk_fstack_parent",
        "rk_cstack_value",
        "rk_cstack_parent",
    ):
        fn = getattr(lib, name)
        fn.argtypes = [void_p, _I32]
        fn.restype = _I32
    lib.rk_session_new.argtypes = [void_p]
    lib.rk_session_new.restype = void_p
    lib.rk_session_free.argtypes = [void_p]
    lib.rk_session_free.restype = None
    lib.rk_session_count.argtypes = [void_p]
    lib.rk_session_count.restype = _I32
    lib.rk_session_oom.argtypes = [void_p]
    lib.rk_session_oom.restype = _I32
    lib.rk_summary_put.argtypes = [
        void_p, _I32, _I32, _I64, _I32, _PI32, _I32, _PI32, _PI32,
    ]
    lib.rk_summary_put.restype = _I32
    lib.rk_ppta.argtypes = [void_p, _I32, _I32, _I64, _I64, _I32]
    lib.rk_ppta.restype = ctypes.POINTER(RkPptaResult)
    lib.rk_ppta_free.argtypes = [ctypes.POINTER(RkPptaResult)]
    lib.rk_ppta_free.restype = None
    lib.rk_dynsum.argtypes = [void_p, _I32, _I32, _I64, _I64, _I32, _I32]
    lib.rk_dynsum.restype = ctypes.POINTER(RkDynResult)
    lib.rk_dyn_free.argtypes = [ctypes.POINTER(RkDynResult)]
    lib.rk_dyn_free.restype = None


def _load() -> Tuple[Optional[ctypes.PyDLL], Optional[str]]:
    if os.environ.get("REPRO_NATIVE", "").strip() == "0":
        return None, "disabled (REPRO_NATIVE=0)"
    source = _kernel_source()
    if not os.path.exists(source):
        return None, "kernel.c not shipped with this install"
    candidates = _prebuilt_candidates()
    compile_error = None
    if not candidates:
        built, compile_error = _compile_kernel(source)
        if built is not None:
            candidates = [built]
    if not candidates:
        return None, compile_error or "no kernel binary available"
    last_error = None
    for path in candidates:
        try:
            # PyDLL: the GIL stays held across calls — see module docstring.
            lib = ctypes.PyDLL(path)
            _declare(lib)
            abi = lib.rk_abi_version()
        except (OSError, AttributeError) as exc:
            last_error = f"kernel load failed: {exc}"
            continue
        if abi != RK_ABI_VERSION:
            last_error = (
                f"kernel ABI mismatch: binary has {abi}, "
                f"binding expects {RK_ABI_VERSION}"
            )
            continue
        return lib, None
    return None, last_error or "no loadable kernel binary"


#: Lazy singleton: {"lib": PyDLL or None, "reason": str or None,
#: "tried": bool}.  Tests monkeypatch this (via :func:`_reset`) to
#: simulate missing-compiler and ABI-mismatch environments.
_STATE = {"lib": None, "reason": None, "tried": False}


def _reset() -> None:
    """Forget the cached load outcome (test hook)."""
    _STATE["lib"] = None
    _STATE["reason"] = None
    _STATE["tried"] = False


def load_kernel() -> Tuple[Optional[ctypes.PyDLL], Optional[str]]:
    """The loaded kernel library, or ``(None, reason)``.

    The outcome is cached for the life of the process — compile and
    load are attempted once, not per query.
    """
    if not _STATE["tried"]:
        lib, reason = _load()
        _STATE["lib"] = lib
        _STATE["reason"] = reason
        _STATE["tried"] = True
    return _STATE["lib"], _STATE["reason"]


def availability() -> Tuple[bool, Optional[str]]:
    """``(True, None)`` when the kernel is loadable, else
    ``(False, reason)`` — the reason engine stats report as
    ``native_unavailable``."""
    lib, reason = load_kernel()
    if lib is None:
        return False, reason or "kernel unavailable"
    return True, None
