"""Tests for the may-alias query API."""

import pytest

from repro import AnalysisConfig, ContextInsensitivePta, DynSum, NoRefine

from tests.conftest import TWO_CALLS_SOURCE, make_pag

ALIAS_SOURCE = """
class Payload { }
class Main {
  static method main() {
    p = new Payload;
    q = p;
    r = new Payload;
  }
}
"""


class TestMayAlias:
    @pytest.fixture(scope="class")
    def pag(self):
        return make_pag(ALIAS_SOURCE)

    def test_copy_aliases(self, pag):
        analysis = DynSum(pag)
        result = analysis.may_alias(
            pag.find_local("Main.main", "p"), pag.find_local("Main.main", "q")
        )
        assert result.verdict is True
        assert len(result.witnesses) == 1

    def test_distinct_allocations_do_not_alias(self, pag):
        analysis = DynSum(pag)
        result = analysis.may_alias(
            pag.find_local("Main.main", "p"), pag.find_local("Main.main", "r")
        )
        assert result.verdict is False
        assert result.witnesses == frozenset()

    def test_self_alias(self, pag):
        analysis = NoRefine(pag)
        node = pag.find_local("Main.main", "p")
        assert analysis.may_alias(node, node).verdict is True

    def test_steps_accumulated(self, pag):
        analysis = DynSum(pag)
        result = analysis.may_alias(
            pag.find_local("Main.main", "p"), pag.find_local("Main.main", "q")
        )
        assert result.steps > 0

    def test_unknown_under_starved_budget(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        analysis = NoRefine(pag, AnalysisConfig(budget=2))
        result = analysis.may_alias(
            pag.find_local("Main.main", "ra"), pag.find_local("Main.main", "rb")
        )
        assert result.verdict is None


class TestContextSensitivity:
    def test_context_separates_returned_values(self):
        """ra and rb come from the same identity method under different
        contexts: context-sensitive analyses prove them non-aliasing,
        the context-insensitive baseline cannot."""
        pag = make_pag(TWO_CALLS_SOURCE)
        ra = pag.find_local("Main.main", "ra")
        rb = pag.find_local("Main.main", "rb")
        assert DynSum(pag).may_alias(ra, rb).verdict is False
        assert NoRefine(pag).may_alias(ra, rb).verdict is False
        assert ContextInsensitivePta(pag).may_alias(ra, rb).verdict is True

    def test_repr(self):
        pag = make_pag(ALIAS_SOURCE)
        result = DynSum(pag).may_alias(
            pag.find_local("Main.main", "p"), pag.find_local("Main.main", "q")
        )
        assert "verdict=True" in repr(result)
