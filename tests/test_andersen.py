"""Tests for the Andersen whole-program points-to substrate."""

import pytest

from repro.callgraph.andersen import AndersenAnalysis
from repro.ir.parser import parse_program

from tests.conftest import (
    FIELD_ALIAS_SOURCE,
    FIGURE2_SOURCE,
    GLOBALS_SOURCE,
    RECURSION_SOURCE,
    STRAIGHTLINE_SOURCE,
    TWO_CALLS_SOURCE,
)


def solve(source, entry="Main.main"):
    return AndersenAnalysis(parse_program(source, entry=entry)).solve()


def classes_of(result, method, var):
    return sorted(cls for _oid, cls in result.points_to_local(method, var))


class TestBasics:
    def test_alloc_and_copies(self):
        result = solve(STRAIGHTLINE_SOURCE)
        for var in ("a", "b", "c"):
            assert classes_of(result, "Main.main", var) == ["Widget"]

    def test_field_store_load_through_alias(self):
        result = solve(FIELD_ALIAS_SOURCE)
        assert classes_of(result, "Main.main", "out") == ["Payload"]

    def test_field_contents_recorded(self):
        result = solve(FIELD_ALIAS_SOURCE)
        (cell_id,) = [
            oid
            for oid, cls in result.points_to_local("Main.main", "cell")
            if cls == "Cell"
        ]
        assert {cls for _o, cls in result.points_to_field(cell_id, "val")} == {
            "Payload"
        }

    def test_context_insensitive_merging(self):
        result = solve(TWO_CALLS_SOURCE)
        # Andersen merges both identity calls.
        assert classes_of(result, "Main.main", "ra") == ["A", "B"]
        assert classes_of(result, "Main.main", "rb") == ["A", "B"]

    def test_globals_flow(self):
        result = solve(GLOBALS_SOURCE)
        assert classes_of(result, "Main.main", "x") == ["A", "B"]
        assert {cls for _o, cls in result.points_to_global("G", "slot")} == {"A", "B"}

    def test_null_objects_propagate(self):
        result = solve(
            """
            class Main {
              static method main() {
                n = null;
                m = n;
              }
            }
            """
        )
        assert classes_of(result, "Main.main", "m") == ["<null>"]

    def test_unassigned_var_empty(self):
        result = solve("class Main { static method main() { x = new Main; y = x; } }")
        assert result.points_to_local("Main.main", "zzz") == set()


class TestCallGraph:
    def test_virtual_dispatch_by_receiver_class(self):
        result = solve(
            """
            class A { method m() { return this; } }
            class B { method m() { return this; } }
            class Main {
              static method main() {
                a = new A;
                x = a.m();
              }
            }
            """
        )
        cg = result.call_graph
        assert cg.is_reachable("A.m")
        assert not cg.is_reachable("B.m")

    def test_dispatch_through_inheritance(self):
        result = solve(
            """
            class Base { method m() { return this; } }
            class Sub extends Base { }
            class Main {
              static method main() {
                s = new Sub;
                x = s.m();
              }
            }
            """
        )
        assert result.call_graph.is_reachable("Base.m")

    def test_static_call_linked_directly(self):
        result = solve(
            """
            class Util { static method mk() { u = new Util; return u; } }
            class Main { static method main() { x = Util::mk(); } }
            """
        )
        assert result.call_graph.is_reachable("Util.mk")
        assert {cls for _o, cls in result.points_to_local("Main.main", "x")} == {
            "Util"
        }

    def test_unreachable_method_not_processed(self):
        result = solve(
            """
            class Dead { method never() { d = new Dead; return d; } }
            class Main { static method main() { x = new Main; } }
            """
        )
        assert not result.call_graph.is_reachable("Dead.never")
        assert result.points_to_local("Dead.never", "d") == set()

    def test_on_the_fly_discovery(self):
        # b is only allocated inside a callee discovered during solving;
        # the virtual call on it must still be resolved.
        result = solve(
            """
            class B { method hi() { return this; } }
            class Maker { static method mk() { b = new B; return b; } }
            class Main {
              static method main() {
                b = Maker::mk();
                x = b.hi();
              }
            }
            """
        )
        assert result.call_graph.is_reachable("B.hi")
        assert {cls for _o, cls in result.points_to_local("Main.main", "x")} == {"B"}

    def test_recursion_terminates(self):
        result = solve(RECURSION_SOURCE)
        assert classes_of(result, "Main.main", "out") == ["A"]

    def test_null_receiver_not_dispatched(self):
        result = solve(
            """
            class A { method m() { return this; } }
            class Main {
              static method main() {
                n = null;
                x = n.m();
              }
            }
            """
        )
        assert not result.call_graph.is_reachable("A.m")

    def test_figure2_both_payloads_merged(self):
        result = solve(FIGURE2_SOURCE)
        # Andersen cannot separate the two vectors' payloads.
        assert classes_of(result, "Main.main", "s1") == ["Integer", "String"]
        assert classes_of(result, "Main.main", "s2") == ["Integer", "String"]

    def test_instantiated_classes_tracked(self):
        result = solve(STRAIGHTLINE_SOURCE)
        assert "Widget" in result.instantiated_classes

    def test_variable_keys_enumerable(self):
        result = solve(STRAIGHTLINE_SOURCE)
        assert ("L", "Main.main", "a") in result.variable_keys()
