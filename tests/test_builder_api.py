"""Tests for the fluent ProgramBuilder API."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.pretty import pretty_print
from repro.util.errors import ValidationError


def test_quickstart_shape():
    b = ProgramBuilder()
    box = b.cls("Box", fields=["val"])
    box.method("get").load("r", "this", "val").ret("r")
    box.method("set", params=["x"]).store("this", "val", "x")
    main = b.cls("Main").static_method("main")
    main.alloc("box", "Box")
    main.alloc("p", "Box")
    main.vcall("box", "set", args=["p"])
    main.vcall("box", "get", target="out")
    program = b.build()
    assert program.counts() == {"classes": 2, "methods": 3, "statements": 7}


def test_statement_chaining_returns_builder():
    b = ProgramBuilder()
    main = b.cls("Main").static_method("main")
    result = main.alloc("x", "Main").copy("y", "x").null("n")
    assert result is main


def test_all_statement_kinds():
    b = ProgramBuilder()
    helper = b.cls("Helper", fields=["f"], static_fields=["g"])
    helper.method("m", params=["a"]).ret("a")
    helper.static_method("sm", params=["a"]).ret("a")
    main = b.cls("Main").static_method("main")
    (
        main.alloc("x", "Helper")
        .null("n")
        .copy("y", "x")
        .cast("z", "Helper", "y")
        .load("w", "x", "f")
        .store("x", "f", "w")
        .static_get("s", "Helper", "g")
        .static_put("Helper", "g", "s")
        .vcall("x", "m", args=["y"], target="r1")
        .scall("Helper", "sm", args=["y"], target="r2")
    )
    program = b.build()
    kinds = [s.kind for s in program.lookup_method("Main.main").statements]
    assert kinds == [
        "alloc",
        "null",
        "copy",
        "cast",
        "load",
        "store",
        "staticget",
        "staticput",
        "call",
        "call",
    ]


def test_build_validates_by_default():
    b = ProgramBuilder()
    b.cls("Main").static_method("main").alloc("x", "Ghost")
    with pytest.raises(ValidationError):
        b.build()


def test_build_can_skip_validation():
    b = ProgramBuilder()
    b.cls("Main").static_method("main").alloc("x", "Ghost")
    program = b.build(validate=False)
    assert program.is_finalized


def test_custom_entry():
    b = ProgramBuilder(entry="App.start")
    b.cls("App").static_method("start").alloc("x", "App")
    program = b.build()
    assert program.entry_method.qualified_name == "App.start"


def test_built_program_pretty_prints_and_reparses():
    from repro.ir.parser import parse_program

    b = ProgramBuilder()
    c = b.cls("C", fields=["f"])
    c.method("id", params=["v"]).ret("v")
    main = b.cls("Main").static_method("main")
    main.alloc("x", "C").vcall("x", "id", args=["x"], target="y")
    program = b.build()
    reparsed = parse_program(pretty_print(program))
    assert reparsed.counts() == program.counts()


def test_method_builder_exposes_method():
    b = ProgramBuilder()
    mb = b.cls("Main").static_method("main")
    mb.alloc("x", "Main")
    assert mb.method.qualified_name == "Main.main"


def test_class_builder_exposes_class_def():
    b = ProgramBuilder()
    cb = b.cls("C")
    assert cb.class_def.name == "C"
