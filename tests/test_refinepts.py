"""Behavioural tests for REFINEPTS: match edges, refinement, early exit."""

import pytest

from repro import AnalysisConfig, NoRefine, RefinePts

from tests.conftest import (
    FIELD_ALIAS_SOURCE,
    FIGURE2_SOURCE,
    STRAIGHTLINE_SOURCE,
    TWO_CALLS_SOURCE,
    make_pag,
)

#: Two cells of the same class: field-based analysis conflates their
#: contents, field-sensitive analysis separates them.
TWO_CELLS_SOURCE = """
class Cell { field val; }
class X { }
class Y { }
class Main {
  static method main() {
    c1 = new Cell;
    c2 = new Cell;
    x = new X;
    y = new Y;
    c1.val = x;
    c2.val = y;
    out1 = c1.val;
    out2 = c2.val;
  }
}
"""


def classes(result):
    return sorted(obj.class_name for obj in result.objects)


class TestConvergence:
    def test_simple_flows_match_norefine(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        rp = RefinePts(pag).points_to_name("Main.main", "c")
        nr = NoRefine(pag).points_to_name("Main.main", "c")
        assert rp.objects == nr.objects

    def test_fully_refined_equals_norefine(self):
        pag = make_pag(TWO_CELLS_SOURCE)
        for var in ("out1", "out2"):
            rp = RefinePts(pag).points_to_name("Main.main", var)
            nr = NoRefine(pag).points_to_name("Main.main", var)
            assert rp.objects == nr.objects

    def test_refinement_separates_cells(self):
        pag = make_pag(TWO_CELLS_SOURCE)
        rp = RefinePts(pag)
        assert classes(rp.points_to_name("Main.main", "out1")) == ["X"]
        assert classes(rp.points_to_name("Main.main", "out2")) == ["Y"]

    def test_figure2_precision(self):
        pag = make_pag(FIGURE2_SOURCE)
        rp = RefinePts(pag)
        assert classes(rp.points_to_name("Main.main", "s1")) == ["Integer"]
        assert classes(rp.points_to_name("Main.main", "s2")) == ["String"]

    def test_iterations_reported(self):
        pag = make_pag(TWO_CELLS_SOURCE)
        result = RefinePts(pag).points_to_name("Main.main", "out1")
        assert result.stats["iterations"] >= 2  # field-based pass + refinement
        assert result.stats["refined_edges"] >= 1

    def test_no_fields_means_single_iteration(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        result = RefinePts(pag).points_to_name("Main.main", "c")
        assert result.stats["iterations"] == 1


class TestEarlyTermination:
    def test_client_satisfied_by_field_based_pass(self):
        """A predicate that the over-approximation already satisfies
        stops refinement after one iteration."""
        pag = make_pag(TWO_CELLS_SOURCE)
        rp = RefinePts(pag)
        always_happy = lambda objects: True
        result = rp.points_to_name("Main.main", "out1", client=always_happy)
        assert result.stats["satisfied_early"]
        assert result.stats["iterations"] == 1

    def test_unsatisfiable_client_forces_full_refinement(self):
        pag = make_pag(TWO_CELLS_SOURCE)
        rp = RefinePts(pag)
        never_happy = lambda objects: False
        result = rp.points_to_name("Main.main", "out1", client=never_happy)
        assert not result.stats["satisfied_early"]
        # Fully refined result is precise despite the unhappy client.
        assert classes(result) == ["X"]

    def test_monotone_predicate_early_exit_is_sound(self):
        """If the over-approximation satisfies a universally quantified
        predicate, the precise answer must satisfy it too."""
        pag = make_pag(TWO_CELLS_SOURCE)

        def all_are_x_or_y(objects):
            return all(obj.class_name in ("X", "Y") for obj in objects)

        early = RefinePts(pag).points_to_name(
            "Main.main", "out1", client=all_are_x_or_y
        )
        assert early.stats["satisfied_early"]
        precise = NoRefine(pag).points_to_name("Main.main", "out1")
        assert all_are_x_or_y(precise.objects)

    def test_field_based_pass_overapproximates(self):
        """Iteration 1 (everything field-based) must see a superset of
        the precise result — the refinement invariant."""
        from repro.cfl.stacks import EMPTY_STACK

        pag = make_pag(TWO_CELLS_SOURCE)
        rp = RefinePts(pag)
        pairs = set()
        rp._explore(
            pag.find_local("Main.main", "out1"),
            EMPTY_STACK,
            pairs,
            rp.config.new_budget(),
            refined=set(),
            flds_seen=set(),
        )
        field_based = {obj for obj, _c in pairs}
        precise = NoRefine(pag).points_to_name("Main.main", "out1").objects
        assert precise <= field_based
        # ...and in this program the over-approximation is strict.
        assert len(field_based) > len(precise)


class TestBudget:
    def test_budget_spans_iterations(self):
        pag = make_pag(TWO_CELLS_SOURCE)
        tiny = RefinePts(pag, AnalysisConfig(budget=3))
        result = tiny.points_to_name("Main.main", "out1")
        assert not result.complete

    def test_context_sensitivity_preserved(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        rp = RefinePts(pag)
        assert classes(rp.points_to_name("Main.main", "ra")) == ["A"]
        assert classes(rp.points_to_name("Main.main", "rb")) == ["B"]

    def test_capabilities_row(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        caps = RefinePts(pag).capabilities()
        assert caps["analysis"] == "REFINEPTS"
        assert caps["memoization"] == "dynamic-within"
        assert caps["reuse"] == "context-dependent"
