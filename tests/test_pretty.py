"""Round-trip tests: parse -> pretty-print -> parse reproduces the program."""

import pytest

from repro.ir.parser import parse_program
from repro.ir.pretty import pretty_print

from tests.conftest import (
    FIELD_ALIAS_SOURCE,
    FIGURE2_SOURCE,
    GLOBALS_SOURCE,
    RECURSION_SOURCE,
    STRAIGHTLINE_SOURCE,
    TWO_CALLS_SOURCE,
)

ALL_SOURCES = [
    FIGURE2_SOURCE,
    STRAIGHTLINE_SOURCE,
    FIELD_ALIAS_SOURCE,
    TWO_CALLS_SOURCE,
    GLOBALS_SOURCE,
    RECURSION_SOURCE,
]


@pytest.mark.parametrize("source", ALL_SOURCES)
def test_roundtrip_is_stable(source):
    program = parse_program(source)
    text1 = pretty_print(program)
    reparsed = parse_program(text1)
    text2 = pretty_print(reparsed)
    assert text1 == text2


@pytest.mark.parametrize("source", ALL_SOURCES)
def test_roundtrip_preserves_structure(source):
    program = parse_program(source)
    reparsed = parse_program(pretty_print(program))
    assert set(program.classes) == set(reparsed.classes)
    assert program.counts() == reparsed.counts()
    for name, class_def in program.classes.items():
        other = reparsed.classes[name]
        assert class_def.superclass == other.superclass
        assert class_def.fields == other.fields
        assert class_def.static_fields == other.static_fields
        assert set(class_def.methods) == set(other.methods)
        for method_name, method in class_def.methods.items():
            other_method = other.methods[method_name]
            assert method.params == other_method.params
            assert method.is_static == other_method.is_static
            assert len(method.statements) == len(other_method.statements)
            for a, b in zip(method.statements, other_method.statements):
                assert a.kind == b.kind


def test_output_contains_all_statement_forms():
    source = """
    class C {
      field f;
      static field g;
      method m(a) {
        x = new C;
        n = null;
        y = x;
        z = (C) y;
        w = x.f;
        x.f = w;
        s = C::g;
        C::g = s;
        r = x.m(s);
        x.m(r);
        q = C::sm(r);
        C::sm(q);
        return q;
      }
      static method sm(a) { return a; }
    }
    class Main { static method main() { c = new C; } }
    """
    text = pretty_print(parse_program(source))
    for snippet in [
        "x = new C",
        "n = null",
        "y = x",
        "z = (C) y",
        "w = x.f",
        "x.f = w",
        "s = C::g",
        "C::g = s",
        "r = x.m(s)",
        "q = C::sm(r)",
        "return q",
        "static field g",
        "static method sm(a)",
    ]:
        assert snippet in text, snippet
