"""Tests for the PIR tokenizer."""

import pytest

from repro.ir.lexer import tokenize
from repro.util.errors import ParseError


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "EOF"]


class TestTokens:
    def test_empty_input(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"

    def test_identifiers(self):
        assert kinds("foo Bar_9 $x _y") == [
            ("IDENT", "foo"),
            ("IDENT", "Bar_9"),
            ("IDENT", "$x"),
            ("IDENT", "_y"),
        ]

    def test_keywords_are_idents(self):
        assert kinds("class new") == [("IDENT", "class"), ("IDENT", "new")]

    def test_single_punct(self):
        assert kinds("{ } ( ) = ; , .") == [
            ("PUNCT", "{"),
            ("PUNCT", "}"),
            ("PUNCT", "("),
            ("PUNCT", ")"),
            ("PUNCT", "="),
            ("PUNCT", ";"),
            ("PUNCT", ","),
            ("PUNCT", "."),
        ]

    def test_double_colon(self):
        assert kinds("A::b") == [
            ("IDENT", "A"),
            ("PUNCT", "::"),
            ("IDENT", "b"),
        ]

    def test_statement(self):
        assert kinds("x = y.f;") == [
            ("IDENT", "x"),
            ("PUNCT", "="),
            ("IDENT", "y"),
            ("PUNCT", "."),
            ("IDENT", "f"),
            ("PUNCT", ";"),
        ]


class TestComments:
    def test_line_comment(self):
        assert kinds("x // the rest is ignored\n y") == [
            ("IDENT", "x"),
            ("IDENT", "y"),
        ]

    def test_block_comment(self):
        assert kinds("x /* ignored \n over lines */ y") == [
            ("IDENT", "x"),
            ("IDENT", "y"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("x /* never closed")


class TestPositions:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_columns_after_newline(self):
        tokens = tokenize("a\n  b")
        assert tokens[1].column == 3

    def test_error_position(self):
        with pytest.raises(ParseError) as exc:
            tokenize("x\n  ?")
        assert exc.value.line == 2
        assert exc.value.column == 3


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("x @ y")

    def test_single_colon_rejected(self):
        with pytest.raises(ParseError):
            tokenize("A:b")
