"""Tests for the CSR-compiled traversal core (:mod:`repro.pag.csr`).

Covers the image lifecycle (lazy compile, edge-insert invalidation,
counters), the token intern pool's stability across graph rebuilds, the
binary snapshot container (mmap round trip, zero-recompile warm starts)
and its corruption battery — every malformed file must surface as a
typed :class:`~repro.api.protocol.SnapshotError`, never a crash.
"""

import json
import struct
import zlib

import pytest

from repro import PointsToEngine, build_pag, parse_program
from repro.analysis.ppta import traversal_impl
from repro.api.protocol import SnapshotError
from repro.api.snapshot import load_snapshot
from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.runner import bench_analysis_config, bench_engine_policy
from repro.cfl.rsm import FAM_LOAD, FAM_STORE
from repro.cfl.stacks import field_id, token_id
from repro.engine.policy import EnginePolicy
from repro.pag.csr import (
    CSR_FORMAT_VERSION,
    KERNEL_ABI_VERSION,
    CsrSection,
    compile_csr,
    pag_fingerprint,
    serialize_csr,
)

SOURCE = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }

class Kennel {
  field occupant;
  method put(a) { this.occupant = a; }
  method get() {
    r = this.occupant;
    return r;
  }
}

class Main {
  static method main() {
    dogHouse = new Kennel;
    catHouse = new Kennel;
    rex = new Dog;
    tom = new Cat;
    dogHouse.put(rex);
    catHouse.put(tom);
    d = dogHouse.get();
    c = catHouse.get();
    sure = (Dog) d;
    oops = (Dog) c;
  }
}
"""


@pytest.fixture
def pag():
    return build_pag(parse_program(SOURCE))


def generated_pag(seed=5, **knobs):
    config = GeneratorConfig(seed=seed, domain_classes=4, data_classes=3, **knobs)
    return build_pag(generate_program(config))


class TestCompileAndInvalidation:
    def test_image_mirrors_the_pag(self, pag):
        image = compile_csr(pag)
        assert image.source == "compiled"
        assert image.n_nodes == sum(pag.node_counts().values())
        assert image.edge_counts == pag.edge_counts()
        assert image.fingerprint == pag_fingerprint(pag)
        assert image.matches(pag)
        # Offsets are proper CSR: n+1 entries, monotone, flags sized n+1
        # with a zero sentinel byte.
        assert len(image.as_off) == image.n_nodes + 1
        assert list(image.as_off) == sorted(image.as_off)
        assert len(image.flags) == image.n_nodes + 1
        assert image.flags[image.n_nodes] == 0

    def test_node_index_is_dense_and_total(self, pag):
        image = pag.csr()
        everything = (
            set(pag.local_var_nodes())
            | set(pag.global_var_nodes())
            | set(pag.object_nodes())
        )
        assert set(image.node_index) == everything
        assert sorted(image.node_index.values()) == list(range(image.n_nodes))
        for node, index in image.node_index.items():
            assert image.nodes[index] is node

    def test_lazy_compile_and_counters(self, pag):
        assert pag.csr_compiles == 0
        first = pag.csr()
        assert pag.csr_compiles == 1
        assert pag.csr() is first  # cached, no recompile
        assert pag.csr_compiles == 1

    def test_edge_insert_invalidates(self, pag):
        first = pag.csr()
        lhs = pag.local_var("Main.main", "d")
        rhs = pag.local_var("Main.main", "extra")
        pag.add_assign(lhs, rhs)
        second = pag.csr()
        assert second is not first
        assert pag.csr_compiles == 2
        assert second.matches(pag) and not first.matches(pag)

    def test_install_rejects_a_foreign_image(self, pag):
        other = generated_pag()
        with pytest.raises(SnapshotError):
            pag.install_csr(other.csr())

    def test_install_adopts_a_matching_image(self, pag):
        image = compile_csr(pag)
        pag.install_csr(image)
        assert pag.csr() is image
        assert pag.csr_compiles == 0


class TestTokenPoolStability:
    def test_token_ids_survive_graph_rebuilds(self, pag):
        pag.csr()
        before = {
            (field, family): token_id(field, family)
            for field in ("occupant",)
            for family in (FAM_LOAD, FAM_STORE)
        }
        fid_before = field_id("occupant")
        # Force a full recompile of both substrates.
        pag.add_assign(
            pag.local_var("Main.main", "d"), pag.local_var("Main.main", "x2")
        )
        pag.adjacency()
        image = pag.csr()
        for (field, family), tid in before.items():
            assert token_id(field, family) == tid
        assert field_id("occupant") == fid_before
        # The recompiled image's token table resolves to the same ids.
        for token in image.tokens:
            assert image.tokens[token_id(*token)] is token

    def test_token_ids_survive_an_edit_session(self):
        engine = PointsToEngine.for_program(parse_program(SOURCE))
        engine.query_name("Main.main", "d")
        pinned = {
            (field, family): token_id(field, family)
            for field in ("occupant",)
            for family in (FAM_LOAD, FAM_STORE)
        }
        engine.edit_session().edit("Kennel.put", lambda method: None)
        engine.query_name("Main.main", "d")  # rebuild + requery
        for (field, family), tid in pinned.items():
            assert token_id(field, family) == tid


class TestSnapshotRoundTrip:
    def query_nodes(self, pag):
        return [node for node in pag.local_var_nodes() if node.method == "Main.main"]

    def test_mmap_round_trip_is_byte_equal(self, pag, tmp_path):
        image = pag.csr()
        payload = serialize_csr(image)
        loaded = CsrSection(memoryview(payload), 0, len(payload)).image_for(pag)
        assert loaded.source == "mmap"
        assert loaded.fingerprint == image.fingerprint
        for name in ("as_off", "as_val", "cb_op", "cb_site", "cb_tgt", "flags"):
            assert bytes(getattr(loaded, name)) == bytes(getattr(image, name))
        assert loaded.tokens == image.tokens
        assert loaded.nodes == image.nodes

    def test_warm_start_answers_without_recompiling(self, pag, tmp_path):
        path = tmp_path / "warm.snap"
        with traversal_impl("array"):
            cold = PointsToEngine(pag, bench_engine_policy())
            cold_answers = [
                sorted(map(repr, cold.query(node).pairs))
                for node in self.query_nodes(pag)
            ]
            cold.save_cache(path, csr=True)

            fresh = build_pag(parse_program(SOURCE))
            policy = bench_engine_policy()
            policy = EnginePolicy(
                analysis=policy.analysis,
                max_field_depth=policy.max_field_depth,
                parallelism=1,
                warm_start=str(path),
            )
            warm = PointsToEngine(fresh, policy)
            warm_answers = [
                sorted(map(repr, warm.query(node).pairs))
                for node in self.query_nodes(fresh)
            ]
        assert warm_answers == cold_answers
        assert warm.stats().csr_warm
        assert fresh.csr_compiles == 0
        assert fresh.adjacency_compiles == 0

    def test_legacy_json_snapshot_still_loads(self, pag, tmp_path):
        path = tmp_path / "legacy.snap"
        engine = PointsToEngine(pag, bench_engine_policy())
        engine.query(self.query_nodes(pag)[0])
        engine.save_cache(path)  # csr=False: the JSON text format
        snapshot = load_snapshot(path)
        assert snapshot.csr is None
        warm = PointsToEngine(
            build_pag(parse_program(SOURCE)),
            EnginePolicy(warm_start=str(path)),
        )
        assert not warm.stats().csr_warm


class TestCorruptionBattery:
    """Every way a snapshot file can be malformed must raise
    :class:`SnapshotError` — no struct errors, no silent misreads."""

    @pytest.fixture
    def snapshot_path(self, pag, tmp_path):
        path = tmp_path / "cache.snap"
        engine = PointsToEngine(pag, bench_engine_policy())
        for node in pag.local_var_nodes():
            if node.method == "Main.main":
                engine.query(node)
        engine.save_cache(path, csr=True)
        return path

    def _mutated(self, path, mutate):
        blob = bytearray(path.read_bytes())
        mutate(blob)
        path.write_bytes(bytes(blob))
        return path

    def test_round_trips_before_mutation(self, snapshot_path):
        snapshot = load_snapshot(snapshot_path)
        assert snapshot.csr is not None

    @pytest.mark.parametrize("keep", [0, 3, 4, 17, 40])
    def test_truncated_header_or_json(self, snapshot_path, keep):
        snapshot_path.write_bytes(snapshot_path.read_bytes()[:keep])
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)

    def test_truncated_csr_payload(self, snapshot_path):
        blob = snapshot_path.read_bytes()
        snapshot_path.write_bytes(blob[:-16])
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)

    def test_bad_container_magic(self, snapshot_path):
        self._mutated(snapshot_path, lambda blob: blob.__setitem__(0, 0x58))
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)

    def test_unsupported_container_major(self, snapshot_path):
        def bump(blob):
            blob[4:6] = struct.pack("!H", 99)

        self._mutated(snapshot_path, bump)
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)

    def _csr_offset(self, path):
        header = struct.Struct("!4sHHQQQ")
        fields = header.unpack_from(path.read_bytes(), 0)
        return fields[4]

    def test_corrupt_csr_crc(self, snapshot_path):
        offset = self._csr_offset(snapshot_path)

        def flip(blob):
            blob[offset + 96] ^= 0xFF  # inside the payload

        self._mutated(snapshot_path, flip)
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)

    def test_foreign_endian_tag(self, snapshot_path):
        offset = self._csr_offset(snapshot_path)

        def swap(blob):
            tag = bytes(blob[offset + 4 : offset + 8])
            blob[offset + 4 : offset + 8] = tag[::-1]

        self._mutated(snapshot_path, swap)
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshot(snapshot_path)
        assert "endian" in str(excinfo.value)

    def test_unsupported_csr_major(self, snapshot_path):
        offset = self._csr_offset(snapshot_path)

        def bump(blob):
            blob[offset + 8 : offset + 10] = struct.pack(
                "=H", CSR_FORMAT_VERSION[0] + 1
            )

        self._mutated(snapshot_path, bump)
        with pytest.raises(SnapshotError):
            load_snapshot(snapshot_path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.snap"
        path.write_bytes(b"\xfe\xed\xfa\xce" * 64)
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_mismatched_pag_is_rejected_on_adoption(self, snapshot_path, pag):
        snapshot = load_snapshot(snapshot_path)
        other = generated_pag()
        with pytest.raises(SnapshotError):
            snapshot.csr.image_for(other)

    # ------------------------------------------------------------------
    # value corruption the CRC alone cannot describe: these rows restamp
    # the checksum after mutating, so only the range validation (added
    # with the native kernel, which indexes these arrays without
    # Python's bounds checks) stands between the corrupt image and a
    # segfault / silent misread.
    # ------------------------------------------------------------------
    _CSR_HEADER = struct.Struct("=4sIHHIIQI")
    _CSR_CRC_OFFSET = 28  # 4s + I + H + H + I + I + Q

    def _section_layout(self, path):
        blob = bytearray(path.read_bytes())
        csr = self._csr_offset(path)
        _m, _e, _maj, _min, meta_len, _r, payload_len, _crc = (
            self._CSR_HEADER.unpack_from(blob, csr)
        )
        meta_end = self._CSR_HEADER.size + meta_len
        payload_start = csr + meta_end + (
            16 - meta_end % 16 if meta_end % 16 else 0
        )
        meta = json.loads(
            bytes(blob[csr + self._CSR_HEADER.size : csr + meta_end]).decode(
                "utf-8"
            )
        )
        return blob, csr, payload_start, payload_len, meta

    def _patch_value(self, path, pick):
        """Overwrite one payload int chosen by ``pick(meta)`` (as
        ``(array_name, index, value)``) and restamp the payload CRC."""
        blob, csr, payload_start, payload_len, meta = self._section_layout(path)
        name, index, value = pick(meta)
        off, count = meta["arrays"][name]
        assert index < count, f"fixture image's {name!r} is too small"
        struct.pack_into("=i", blob, payload_start + off + index * 4, value)
        crc = zlib.crc32(bytes(blob[payload_start : payload_start + payload_len]))
        struct.pack_into("=I", blob, csr + self._CSR_CRC_OFFSET, crc)
        path.write_bytes(bytes(blob))

    @staticmethod
    def _first_nonempty(meta, names):
        for name in names:
            if meta["arrays"][name][1]:
                return name
        raise AssertionError(f"fixture image has none of {names}")

    def test_out_of_range_node_index_is_rejected(self, snapshot_path):
        def pick(meta):
            name = self._first_nonempty(
                meta, ("as_val", "new_val", "li_val", "cb_tgt")
            )
            return name, 0, meta["n_nodes"]

        self._patch_value(snapshot_path, pick)
        with pytest.raises(SnapshotError, match="out-of-range node index"):
            load_snapshot(snapshot_path)

    def test_out_of_range_token_id_is_rejected(self, snapshot_path):
        def pick(meta):
            name = self._first_nonempty(meta, ("li_tok", "sf_tok"))
            return name, 0, len(meta["tokens"])

        self._patch_value(snapshot_path, pick)
        with pytest.raises(SnapshotError, match="out-of-range token id"):
            load_snapshot(snapshot_path)

    def test_out_of_range_op_code_is_rejected(self, snapshot_path):
        def pick(meta):
            name = self._first_nonempty(meta, ("cb_op", "cf_op"))
            return name, 0, 9

        self._patch_value(snapshot_path, pick)
        with pytest.raises(SnapshotError, match="crossing op code"):
            load_snapshot(snapshot_path)

    def test_negative_value_is_rejected(self, snapshot_path):
        def pick(meta):
            name = self._first_nonempty(meta, ("as_val", "new_val"))
            return name, 0, -3

        self._patch_value(snapshot_path, pick)
        with pytest.raises(SnapshotError, match="out-of-range node index"):
            load_snapshot(snapshot_path)

    def test_nonmonotone_offsets_are_rejected(self, snapshot_path):
        self._patch_value(snapshot_path, lambda meta: ("as_off", 0, 7))
        with pytest.raises(SnapshotError, match="offsets"):
            load_snapshot(snapshot_path)

    def test_kernel_abi_mismatch_degrades_native_to_array(
        self, snapshot_path, pag
    ):
        """A stamped-but-mismatched kernel ABI is not corruption: the
        image loads, the pure-Python impls consume it as ever, and the
        ``native`` impl refuses it and silently falls back to ``array``
        with identical answers (the meta is outside the payload CRC, so
        the stamp can be rewritten in place)."""
        old = f'"kernel_abi":{KERNEL_ABI_VERSION}'.encode()
        blob = snapshot_path.read_bytes()
        assert old in blob
        snapshot_path.write_bytes(blob.replace(old, b'"kernel_abi":9', 1))
        image = load_snapshot(snapshot_path).csr.image_for(pag)
        assert image.kernel_abi == 9
        pag.install_csr(image)

        from repro.analysis.dynsum import DynSum

        def answers(impl):
            analysis = DynSum(pag, bench_analysis_config())
            with traversal_impl(impl):
                return [
                    sorted(map(repr, analysis.points_to(node).pairs))
                    for node in pag.local_var_nodes()
                ], analysis.total_steps

        assert answers("native") == answers("array")
        from repro.native import available
        from repro.native.session import native_unavailable_reason

        if available():
            assert "kernel ABI" in native_unavailable_reason(pag)


class TestArrayImplOverCsr:
    """The array loop consumes whatever image the PAG carries —
    compiled or mmapped — and answers identically either way."""

    def test_answers_match_across_image_sources(self, pag):
        from repro.analysis.dynsum import DynSum

        def answers():
            analysis = DynSum(pag, bench_analysis_config())
            with traversal_impl("array"):
                return [
                    sorted(map(repr, analysis.points_to(node).pairs))
                    for node in pag.local_var_nodes()
                ], analysis.total_steps

        compiled = answers()
        payload = serialize_csr(pag.csr())
        pag.install_csr(
            CsrSection(memoryview(payload), 0, len(payload)).image_for(pag)
        )
        assert pag.csr().source == "mmap"
        assert answers() == compiled
