"""Tests for the PIR parser: every statement form plus error paths."""

import pytest

from repro.ir.parser import parse_program
from repro.util.errors import ParseError, ValidationError


def parse_main(body, extra="", entry="Main.main", validate=True):
    source = f"""
    class Helper {{
      field f;
      static field g;
      method m(a) {{ return a; }}
      static method sm(a) {{ return a; }}
    }}
    {extra}
    class Main {{
      static method main() {{
        {body}
      }}
    }}
    """
    return parse_program(source, entry=entry, validate=validate)


def main_stmts(program):
    return program.lookup_method("Main.main").statements


class TestStatements:
    def test_alloc(self):
        (stmt,) = main_stmts(parse_main("x = new Helper;"))
        assert stmt.kind == "alloc"
        assert stmt.target == "x"
        assert stmt.class_name == "Helper"

    def test_null(self):
        (stmt,) = main_stmts(parse_main("x = null;"))
        assert stmt.kind == "null"
        assert stmt.target == "x"

    def test_copy(self):
        stmts = main_stmts(parse_main("x = new Helper; y = x;"))
        assert stmts[1].kind == "copy"
        assert (stmts[1].target, stmts[1].source) == ("y", "x")

    def test_cast(self):
        stmts = main_stmts(parse_main("x = new Helper; y = (Helper) x;"))
        assert stmts[1].kind == "cast"
        assert stmts[1].class_name == "Helper"
        assert stmts[1].source == "x"

    def test_load(self):
        stmts = main_stmts(parse_main("x = new Helper; y = x.f;"))
        assert stmts[1].kind == "load"
        assert (stmts[1].target, stmts[1].base, stmts[1].field) == ("y", "x", "f")

    def test_store(self):
        stmts = main_stmts(parse_main("x = new Helper; x.f = x;"))
        assert stmts[1].kind == "store"
        assert (stmts[1].base, stmts[1].field, stmts[1].source) == ("x", "f", "x")

    def test_static_get(self):
        (stmt,) = main_stmts(parse_main("x = Helper::g;"))
        assert stmt.kind == "staticget"
        assert (stmt.class_name, stmt.field) == ("Helper", "g")

    def test_static_put(self):
        stmts = main_stmts(parse_main("x = new Helper; Helper::g = x;"))
        assert stmts[1].kind == "staticput"
        assert (stmts[1].class_name, stmts[1].field, stmts[1].source) == (
            "Helper",
            "g",
            "x",
        )

    def test_virtual_call_with_target(self):
        stmts = main_stmts(parse_main("x = new Helper; y = x.m(x);"))
        call = stmts[1]
        assert call.kind == "call"
        assert call.is_virtual
        assert call.target == "y"
        assert call.receiver == "x"
        assert call.args == ["x"]

    def test_virtual_call_no_target(self):
        stmts = main_stmts(parse_main("x = new Helper; x.m(x);"))
        call = stmts[1]
        assert call.is_virtual
        assert call.target is None

    def test_static_call_with_target(self):
        stmts = main_stmts(parse_main("x = new Helper; y = Helper::sm(x);"))
        call = stmts[1]
        assert not call.is_virtual
        assert call.class_name == "Helper"
        assert call.target == "y"

    def test_static_call_no_target(self):
        stmts = main_stmts(parse_main("x = new Helper; Helper::sm(x);"))
        assert stmts[1].kind == "call"
        assert stmts[1].target is None

    def test_multiple_args(self):
        program = parse_main(
            "x = new Gadget; y = x.mm(x, x);",
            extra="class Gadget { method mm(a, b) { return a; } }",
        )
        call = main_stmts(program)[1]
        assert call.args == ["x", "x"]

    def test_return_statement(self):
        program = parse_main("x = new Helper;")
        helper_m = program.lookup_method("Helper.m")
        assert helper_m.statements[-1].kind == "return"
        assert helper_m.statements[-1].source == "a"

    def test_statement_labels_carry_lines(self):
        (stmt,) = main_stmts(parse_main("x = new Helper;"))
        assert isinstance(stmt.label, int)


class TestClassStructure:
    def test_extends(self):
        program = parse_program(
            """
            class A { }
            class B extends A { }
            class Main { static method main() { x = new B; } }
            """
        )
        assert program.classes["B"].superclass == "A"

    def test_fields_and_static_fields(self):
        program = parse_main("x = new Helper;")
        helper = program.classes["Helper"]
        assert helper.fields == ["f"]
        assert helper.static_fields == ["g"]

    def test_method_params(self):
        program = parse_main("x = new Helper;")
        assert program.lookup_method("Helper.m").params == ["a"]

    def test_static_method_flag(self):
        program = parse_main("x = new Helper;")
        assert program.lookup_method("Helper.sm").is_static
        assert not program.lookup_method("Helper.m").is_static

    def test_call_sites_get_unique_ids(self):
        program = parse_main("x = new Helper; y = x.m(x); z = x.m(y);")
        sites = program.call_sites()
        assert len(sites) == 2
        assert len(set(sites)) == 2

    def test_allocation_ids_unique(self):
        program = parse_main("x = new Helper; y = new Helper; z = null;")
        ids = [stmt.object_id for _m, stmt in program.allocations()]
        assert len(ids) == len(set(ids)) == 3

    def test_null_gets_object_id(self):
        program = parse_main("z = null;")
        (pair,) = program.allocations()
        assert pair[1].kind == "null"
        assert pair[1].object_id.endswith("#null")


class TestParseErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_main("x = new Helper")

    def test_keyword_as_name(self):
        with pytest.raises(ParseError):
            parse_main("class = new Helper;")

    def test_unclosed_class(self):
        with pytest.raises(ParseError):
            parse_program("class A {")

    def test_garbage_member(self):
        with pytest.raises(ParseError):
            parse_program("class A { banana x; }")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as exc:
            parse_program("class A { field }")
        assert exc.value.line is not None

    def test_validation_can_be_disabled(self):
        # alloc of an unknown class parses fine without validation
        program = parse_program(
            "class Main { static method main() { x = new Ghost; } }",
            validate=False,
        )
        assert program.is_finalized

    def test_validation_enabled_by_default(self):
        with pytest.raises(ValidationError):
            parse_program("class Main { static method main() { x = new Ghost; } }")
