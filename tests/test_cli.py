"""Tests for the ``python -m repro.bench`` command-line harness."""

import pytest

from repro.bench.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestCli:
    def test_table2(self, capsys):
        code, out = run_cli(
            capsys, "--artifact", "table2", "--benchmarks", "luindex", "--scale", "0.5"
        )
        assert code == 0
        assert "capability matrix" in out
        assert "DYNSUM" in out

    def test_table3(self, capsys):
        code, out = run_cli(
            capsys, "--artifact", "table3", "--benchmarks", "luindex", "--scale", "0.5"
        )
        assert code == 0
        assert "benchmark statistics" in out
        assert "luindex" in out

    def test_table4(self, capsys):
        code, out = run_cli(
            capsys, "--artifact", "table4", "--benchmarks", "luindex", "--scale", "0.5"
        )
        assert code == 0
        assert "analysis steps" in out
        assert "Speedups" in out

    def test_figure5(self, capsys):
        code, out = run_cli(
            capsys, "--artifact", "figure5", "--benchmarks", "luindex", "--scale", "0.5"
        )
        assert code == 0
        assert "% of STASUM" in out

    def test_figure4(self, capsys):
        code, out = run_cli(
            capsys, "--artifact", "figure4", "--benchmarks", "luindex", "--scale", "0.5"
        )
        assert code == 0
        assert "per-batch step ratio" in out

    def test_unknown_benchmark_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--benchmarks", "quake3"])

    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--artifact", "table99"])


class TestDumpPrograms:
    def test_dump_writes_reparseable_source(self, capsys, tmp_path):
        code, _out = run_cli(
            capsys,
            "--artifact",
            "table2",
            "--benchmarks",
            "luindex",
            "--scale",
            "0.5",
            "--dump-programs",
            str(tmp_path),
        )
        assert code == 0
        dumped = tmp_path / "luindex.pir"
        assert dumped.exists()
        from repro import parse_program

        program = parse_program(dumped.read_text())
        assert program.entry == "Main.main"
