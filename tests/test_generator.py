"""Tests for the synthetic benchmark generator and the named suite."""

import pytest

from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.suite import BENCHMARK_NAMES, benchmark_config, load_benchmark
from repro.clients import FactoryMethodClient, NullDerefClient, SafeCastClient
from repro.ir.pretty import pretty_print
from repro.ir.validate import validate_program

SMALL = GeneratorConfig(
    seed=7,
    domain_classes=4,
    data_classes=3,
    workers_per_class=2,
    stmts_per_worker=6,
    driver_rounds=1,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = pretty_print(generate_program(SMALL))
        b = pretty_print(generate_program(SMALL))
        assert a == b

    def test_different_seed_different_program(self):
        from dataclasses import replace

        a = pretty_print(generate_program(SMALL))
        b = pretty_print(generate_program(replace(SMALL, seed=8)))
        assert a != b


class TestStructure:
    @pytest.fixture(scope="class")
    def program(self):
        return generate_program(SMALL)

    def test_validates(self, program):
        validate_program(program)

    def test_entry_is_main(self, program):
        assert program.entry == "Main.main"

    def test_domain_classes_present(self, program):
        for index in range(SMALL.domain_classes):
            assert f"Comp{index}" in program.classes

    def test_data_hierarchy_present(self, program):
        assert "Data0" in program.classes
        assert program.classes["Data0_1"].superclass == "Data0"

    def test_library_present(self, program):
        for name in ("Vec", "Arr", "Registry", "Box0"):
            assert name in program.classes

    def test_factories_emitted(self, program):
        factories = [
            m for m in program.methods() if m.name == "create" and m.is_static
        ]
        assert factories

    def test_casts_emitted(self, program):
        kinds = [stmt.kind for _m, stmt in program.statements()]
        assert "cast" in kinds

    def test_nulls_emitted(self, program):
        kinds = [stmt.kind for _m, stmt in program.statements()]
        assert "null" in kinds

    def test_scaled_config(self):
        bigger = SMALL.scaled(2.0)
        assert bigger.domain_classes == 8
        assert bigger.seed == SMALL.seed


class TestNamedSuite:
    def test_all_names_have_configs(self):
        for name in BENCHMARK_NAMES:
            assert benchmark_config(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            benchmark_config("quake3")

    def test_load_benchmark_small_scale(self):
        instance = load_benchmark("avrora", scale=0.5)
        assert instance.name == "avrora"
        assert instance.pag.node_counts()["V"] > 0
        assert instance.stats.methods > 0

    def test_clients_find_queries(self):
        instance = load_benchmark("avrora", scale=0.5)
        for client_cls in (SafeCastClient, NullDerefClient, FactoryMethodClient):
            assert len(client_cls(instance.pag).queries()) > 0

    def test_locality_in_realistic_band(self):
        """Table 3 reports 80-90% locality; the synthetic suite should
        land in a comparable band (we accept 60-95%)."""
        instance = load_benchmark("jack")
        assert 0.60 <= instance.pag.locality() <= 0.95

    def test_stats_row_matches_pag(self):
        instance = load_benchmark("luindex", scale=0.5)
        stats = instance.stats
        assert stats.total_nodes == sum(instance.pag.node_counts().values())
        assert stats.total_edges == sum(instance.pag.edge_counts().values())

    def test_query_volume_ordering(self):
        """xalan issues more SafeCast queries than jack (Table 3)."""
        xalan = load_benchmark("xalan")
        jack = load_benchmark("jack")
        assert len(SafeCastClient(xalan.pag).queries()) > len(
            SafeCastClient(jack.pag).queries()
        )


class TestStressKnobs:
    """The deep-recursion / megamorphic / field-chain knobs from the perf
    harness: off by default, deterministic, and analysis-neutral (all
    three traversal impls agree on every knobbed program)."""

    def test_knobs_default_off(self):
        from dataclasses import replace

        base = pretty_print(generate_program(SMALL))
        zeroed = replace(
            SMALL, recursion_depth=0, megamorphic_degree=0, field_chain_depth=0
        )
        assert pretty_print(generate_program(zeroed)) == base

    def test_knobs_do_not_perturb_seeded_core(self):
        """Stress shapes are appended after the rng-driven emission, so
        turning a knob must not reshuffle the seeded classes."""
        from dataclasses import replace

        base = pretty_print(generate_program(SMALL))
        knobbed = pretty_print(
            generate_program(replace(SMALL, recursion_depth=4))
        )
        for line in base.splitlines():
            if line.startswith("class ") and "Rec" not in line:
                assert line in knobbed

    def test_knobbed_programs_validate(self):
        from dataclasses import replace

        for knob in ("recursion_depth", "megamorphic_degree", "field_chain_depth"):
            program = generate_program(replace(SMALL, **{knob: 5}))
            validate_program(program)

    def test_recursion_knob_creates_recursive_sites(self):
        from dataclasses import replace

        from repro.pag.builder import build_pag

        pag = build_pag(generate_program(replace(SMALL, recursion_depth=6)))
        assert len(pag.recursive_sites()) >= 6

    def test_megamorphic_knob_fans_out_dispatch(self):
        from dataclasses import replace

        program = generate_program(replace(SMALL, megamorphic_degree=8))
        names = set(program.classes)
        assert {f"Poly{k}" for k in range(8)} <= names
        assert "PolyHub" in names

    def test_field_chain_knob_emits_deep_chain(self):
        from dataclasses import replace

        program = generate_program(replace(SMALL, field_chain_depth=7))
        names = set(program.classes)
        assert {"Link", "DeepWalk"} <= names

    def test_impls_agree_on_knobbed_programs(self):
        from dataclasses import replace

        from repro.analysis.dynsum import DynSum
        from repro.analysis.ppta import traversal_impl
        from repro.bench.runner import bench_analysis_config
        from repro.pag.builder import build_pag

        config = replace(
            SMALL, recursion_depth=4, megamorphic_degree=6, field_chain_depth=5
        )
        pag = build_pag(generate_program(config))
        nodes = sorted(pag.local_var_nodes(), key=repr)[:30]
        results = {}
        for impl in ("fast", "array", "reference"):
            analysis = DynSum(pag, bench_analysis_config())
            with traversal_impl(impl):
                answers = [
                    sorted(map(repr, analysis.points_to(n).pairs)) for n in nodes
                ]
            results[impl] = (answers, analysis.total_steps)
        assert results["fast"] == results["reference"]
        assert results["array"] == results["reference"]
