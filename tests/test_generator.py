"""Tests for the synthetic benchmark generator and the named suite."""

import pytest

from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.suite import BENCHMARK_NAMES, benchmark_config, load_benchmark
from repro.clients import FactoryMethodClient, NullDerefClient, SafeCastClient
from repro.ir.pretty import pretty_print
from repro.ir.validate import validate_program

SMALL = GeneratorConfig(
    seed=7,
    domain_classes=4,
    data_classes=3,
    workers_per_class=2,
    stmts_per_worker=6,
    driver_rounds=1,
)


class TestDeterminism:
    def test_same_seed_same_program(self):
        a = pretty_print(generate_program(SMALL))
        b = pretty_print(generate_program(SMALL))
        assert a == b

    def test_different_seed_different_program(self):
        from dataclasses import replace

        a = pretty_print(generate_program(SMALL))
        b = pretty_print(generate_program(replace(SMALL, seed=8)))
        assert a != b


class TestStructure:
    @pytest.fixture(scope="class")
    def program(self):
        return generate_program(SMALL)

    def test_validates(self, program):
        validate_program(program)

    def test_entry_is_main(self, program):
        assert program.entry == "Main.main"

    def test_domain_classes_present(self, program):
        for index in range(SMALL.domain_classes):
            assert f"Comp{index}" in program.classes

    def test_data_hierarchy_present(self, program):
        assert "Data0" in program.classes
        assert program.classes["Data0_1"].superclass == "Data0"

    def test_library_present(self, program):
        for name in ("Vec", "Arr", "Registry", "Box0"):
            assert name in program.classes

    def test_factories_emitted(self, program):
        factories = [
            m for m in program.methods() if m.name == "create" and m.is_static
        ]
        assert factories

    def test_casts_emitted(self, program):
        kinds = [stmt.kind for _m, stmt in program.statements()]
        assert "cast" in kinds

    def test_nulls_emitted(self, program):
        kinds = [stmt.kind for _m, stmt in program.statements()]
        assert "null" in kinds

    def test_scaled_config(self):
        bigger = SMALL.scaled(2.0)
        assert bigger.domain_classes == 8
        assert bigger.seed == SMALL.seed


class TestNamedSuite:
    def test_all_names_have_configs(self):
        for name in BENCHMARK_NAMES:
            assert benchmark_config(name) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            benchmark_config("quake3")

    def test_load_benchmark_small_scale(self):
        instance = load_benchmark("avrora", scale=0.5)
        assert instance.name == "avrora"
        assert instance.pag.node_counts()["V"] > 0
        assert instance.stats.methods > 0

    def test_clients_find_queries(self):
        instance = load_benchmark("avrora", scale=0.5)
        for client_cls in (SafeCastClient, NullDerefClient, FactoryMethodClient):
            assert len(client_cls(instance.pag).queries()) > 0

    def test_locality_in_realistic_band(self):
        """Table 3 reports 80-90% locality; the synthetic suite should
        land in a comparable band (we accept 60-95%)."""
        instance = load_benchmark("jack")
        assert 0.60 <= instance.pag.locality() <= 0.95

    def test_stats_row_matches_pag(self):
        instance = load_benchmark("luindex", scale=0.5)
        stats = instance.stats
        assert stats.total_nodes == sum(instance.pag.node_counts().values())
        assert stats.total_edges == sum(instance.pag.edge_counts().values())

    def test_query_volume_ordering(self):
        """xalan issues more SafeCast queries than jack (Table 3)."""
        xalan = load_benchmark("xalan")
        jack = load_benchmark("jack")
        assert len(SafeCastClient(xalan.pag).queries()) > len(
            SafeCastClient(jack.pag).queries()
        )
