"""The paper's running example (Figure 2 / Table 1 / Section 3.4).

These tests pin the behaviour the paper derives by hand:

* ``pointsTo(s1) = {o26}`` (the Integer) and ``pointsTo(s2) = {o29}``
  (the String) — context-sensitive analyses must separate the two
  vectors' payloads even though they share all library code;
* the context-insensitive analysis merges them (Section 3.2);
* Andersen (the Spark substrate) merges them too;
* DYNSUM answers the second query with fewer steps than the first by
  reusing summaries cached during the first (Table 1: 23 vs 15 steps).
"""

import pytest

from repro import (
    AnalysisConfig,
    AndersenAnalysis,
    ContextInsensitivePta,
    DynSum,
    NoRefine,
    RefinePts,
    StaSum,
)

CONTEXT_SENSITIVE = [NoRefine, RefinePts, DynSum, StaSum]


def object_classes(result):
    return sorted(obj.class_name for obj in result.objects)


@pytest.fixture(scope="module")
def pag(figure2_pag):
    return figure2_pag


@pytest.mark.parametrize("analysis_cls", CONTEXT_SENSITIVE)
class TestContextSensitiveResults:
    def test_s1_is_integer_only(self, pag, analysis_cls):
        result = analysis_cls(pag).points_to_name("Main.main", "s1")
        assert result.complete
        assert object_classes(result) == ["Integer"]

    def test_s2_is_string_only(self, pag, analysis_cls):
        result = analysis_cls(pag).points_to_name("Main.main", "s2")
        assert result.complete
        assert object_classes(result) == ["String"]

    def test_v1_points_to_one_vector(self, pag, analysis_cls):
        result = analysis_cls(pag).points_to_name("Main.main", "v1")
        assert object_classes(result) == ["Vector"]


class TestImpreciseBaselines:
    def test_cipta_merges_payloads(self, pag):
        cipta = ContextInsensitivePta(pag)
        for var in ("s1", "s2"):
            result = cipta.points_to_name("Main.main", var)
            assert object_classes(result) == ["Integer", "String"]

    def test_andersen_merges_payloads(self, figure2_program):
        result = AndersenAnalysis(figure2_program).solve()
        classes = sorted(
            cls for _o, cls in result.points_to_local("Main.main", "s1")
        )
        assert classes == ["Integer", "String"]

    def test_context_sensitive_subset_of_cipta(self, pag):
        ci = ContextInsensitivePta(pag).points_to_name("Main.main", "s1")
        cs = NoRefine(pag).points_to_name("Main.main", "s1")
        assert cs.objects <= ci.objects


class TestSummaryReuse:
    def test_second_query_cheaper(self, pag):
        """Table 1's headline: s2 takes fewer steps than s1 thanks to
        the summaries cached while answering s1."""
        dynsum = DynSum(pag)
        r1 = dynsum.points_to_name("Main.main", "s1")
        r2 = dynsum.points_to_name("Main.main", "s2")
        assert r2.steps < r1.steps

    def test_second_query_hits_cache(self, pag):
        dynsum = DynSum(pag)
        dynsum.points_to_name("Main.main", "s1")
        hits_before = dynsum.cache.hits
        dynsum.points_to_name("Main.main", "s2")
        assert dynsum.cache.hits > hits_before

    def test_repeated_query_is_much_cheaper(self, pag):
        dynsum = DynSum(pag)
        first = dynsum.points_to_name("Main.main", "s1")
        again = dynsum.points_to_name("Main.main", "s1")
        assert again.pairs == first.pairs
        assert again.steps <= first.steps

    def test_summaries_accumulate(self, pag):
        dynsum = DynSum(pag)
        assert dynsum.summary_count == 0
        dynsum.points_to_name("Main.main", "s1")
        after_s1 = dynsum.summary_count
        assert after_s1 > 0
        dynsum.points_to_name("Main.main", "s2")
        assert dynsum.summary_count >= after_s1

    def test_ppta_example_from_section_4_1(self, pag):
        """ppta(ret@Vector.get, [], S1) contains the boundary tuple
        (this@Vector.get, [arr, elems], S1) — the paper's Section 4.1
        example (modulo our variable naming: ret is ``r``)."""
        from repro.analysis.ppta import run_ppta
        from repro.cfl.budget import Budget
        from repro.cfl.rsm import FAM_LOAD, S1
        from repro.cfl.stacks import EMPTY_STACK

        node = pag.find_local("Vector.get", "r")
        summary = run_ppta(pag, node, EMPTY_STACK, S1, Budget(None))
        this_get = pag.find_local("Vector.get", "this")
        expected_stack = EMPTY_STACK.push(("arr", FAM_LOAD)).push(("elems", FAM_LOAD))
        assert (this_get, expected_stack, S1) in summary.boundaries


class TestPrecisionEquality:
    """Table 2: NOREFINE, REFINEPTS and DYNSUM are all fully precise."""

    @pytest.mark.parametrize("var", ["s1", "s2", "v1", "v2", "c1", "c2"])
    def test_object_sets_agree(self, pag, var):
        results = [
            cls(pag).points_to_name("Main.main", var)
            for cls in (NoRefine, RefinePts, DynSum)
        ]
        assert all(r.complete for r in results)
        reference = results[0].objects
        for result in results[1:]:
            assert result.objects == reference

    def test_pair_sets_agree_norefine_dynsum(self, pag):
        for var in ("s1", "s2"):
            nr = NoRefine(pag).points_to_name("Main.main", var)
            ds = DynSum(pag).points_to_name("Main.main", var)
            assert nr.pairs == ds.pairs
