"""Golden test: DYNSUM's Figure 2 trace visits the paper's Table 1 states.

Table 1 lists the (node, field stack, state, context) tuples DYNSUM moves
through when answering ``pointsTo(s1)``.  Our traversal order differs
(worklist vs the paper's narrative order) and our step counts differ (we
charge per exploded state), but the *states themselves* are dictated by
the grammar — so the distinctive ones must appear in the trace:

* ``ret_get`` with an empty stack in S1 under context [32, 22]-shaped
  nesting (two pushed call sites);
* ``this_get`` with pending ``[arr, elems]`` (the paper's ``(a, e)``);
* ``this_retrieve`` with pending ``[arr, elems, vec]``;
* the S2 turnaround at the Client allocation with the full stack;
* the final family-A pops that reach the Integer through ``p``/``tmp1``.
"""

import pytest

from repro import DynSum
from repro.analysis.trace import QueryTracer
from repro.cfl.rsm import S1, S2

from tests.conftest import FIGURE2_SOURCE, make_pag


@pytest.fixture(scope="module")
def traced():
    pag = make_pag(FIGURE2_SOURCE)
    dynsum = DynSum(pag)
    with QueryTracer(dynsum) as tracer:
        result = dynsum.points_to_name("Main.main", "s1")
    return pag, tracer, result


def visited_states(tracer):
    return {
        (repr(step.node), step.fields(), step.state) for step in tracer.visits
    }


def test_answer_is_o26(traced):
    _pag, _tracer, result = traced
    assert sorted(o.class_name for o in result.objects) == ["Integer"]


def test_paper_step_2_state(traced):
    """Table 1 step 2: ret_get, empty stack, S1 (our Vector.get returns r)."""
    _pag, tracer, _result = traced
    assert ("r@Vector.get", (), S1) in visited_states(tracer)


def test_paper_step_4_state(traced):
    """Table 1 step 4: this_get with pending [a, e].  The backward leg
    lives inside Vector.get's PPTA (the loads are local edges), so it
    appears as that summary's boundary tuple; the forward mirror leg
    (step 16's entry into get) is a worklist visit."""
    pag, tracer, _result = traced
    from repro.cfl.rsm import FAM_LOAD
    from repro.cfl.stacks import EMPTY_STACK

    r = pag.find_local("Vector.get", "r")
    this_get = pag.find_local("Vector.get", "this")
    summary = tracer.analysis.cache.lookup(r, EMPTY_STACK, S1)
    assert summary is not None
    expected = EMPTY_STACK.push(("arr", FAM_LOAD)).push(("elems", FAM_LOAD))
    assert (this_get, expected, S1) in summary.boundaries
    assert ("this@Vector.get", ("arr", "elems"), S2) in visited_states(tracer)


def test_paper_step_6_7_states(traced):
    """Table 1 steps 6-7: the full pending path [a, e, v] reaches c1
    backward (step 7); the receiver-side alias search then proceeds
    forward through Client.retrieve's ``this`` (step 6's mirror leg)."""
    _pag, tracer, _result = traced
    states = visited_states(tracer)
    assert ("c1@Main.main", ("arr", "elems", "vec"), S1) in states
    assert ("this@Client.retrieve", ("arr", "elems", "vec"), S2) in states


def test_paper_step_8_turnaround(traced):
    """Table 1 steps 7-8: the turnaround at c1 happens inside c1's PPTA
    (local new edge), so it shows up as the cached summary of
    (c1, [a,e,v], S1) containing the S2 boundary tuple for c1."""
    pag, tracer, _result = traced
    from repro.cfl.rsm import FAM_LOAD
    from repro.cfl.stacks import EMPTY_STACK

    c1 = pag.find_local("Main.main", "c1")
    stack = (
        EMPTY_STACK.push(("arr", FAM_LOAD))
        .push(("elems", FAM_LOAD))
        .push(("vec", FAM_LOAD))
    )
    dynsum_cache = tracer.analysis.cache
    summary = dynsum_cache.lookup(c1, stack, S1)
    assert summary is not None
    assert (c1, stack, S2) in summary.boundaries


def test_paper_step_13_vector_store(traced):
    """Table 1 step 13: inside the Vector constructor in S2 with the
    elems store about to pop (this_Vector, [a, e], S2)."""
    _pag, tracer, _result = traced
    assert ("this@Vector.init", ("arr", "elems"), S2) in visited_states(tracer)


def test_paper_step_22_final_state(traced):
    """Table 1 step 22: after the family-A pops inside Vector.add's
    PPTA, the traversal crosses entry_26 backward to tmp1 with an empty
    stack — the state that emits o26."""
    _pag, tracer, _result = traced
    assert ("tmp1@Main.main", (), S1) in visited_states(tracer)


def test_no_string_payload_state_reached(traced):
    """Context sensitivity: the trace never pops into tmp2 (the String
    actual of the *other* vector) with an empty stack — the state that
    would add o29 to pts(s1)."""
    _pag, tracer, _result = traced
    assert ("tmp2@Main.main", (), S1) not in visited_states(tracer)


def test_contexts_recorded_for_nested_calls(traced):
    """The ret_get visit happens under a two-deep context (the paper's
    [32, 22])."""
    _pag, tracer, _result = traced
    depths = {
        len(step.context)
        for step in tracer.visits
        if repr(step.node) == "r@Vector.get" and step.context is not None
    }
    assert 2 in depths
