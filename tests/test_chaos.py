"""Chaos soak battery: deterministic fault injection over real workloads.

The acceptance property of the whole robustness layer: under ANY
seeded fault schedule — connect refusals, timeouts, mid-flight
disconnects, truncated and corrupted response lines, delays, blank
server restarts — an engine backed by the shared cache service returns
**element-wise identical** answers to a fault-free run.  Summaries are
pure memos; faults can only move cost, never answers.

Every schedule here is a pure function of its seed: a red run replays
exactly with the same spec, which is the entire point of
:mod:`repro.cacheserver.faults` over ad-hoc monkeypatching.

The battery covers every fault kind on both serving tiers (threaded
and async), the Figure-4 workload plus a synthetic generator program,
the circuit breaker's bounded-cost guarantee under a dead fleet (with
a controllable clock — no wall-clock flakiness), the per-link jitter
that prevents reconnect storms, and the hostile reconnect-and-seed
paths (corrupted seed lines, a shard dying mid-seed, stale-epoch
refusals during seeding).
"""

import pytest

from repro import CachePolicy, PointsToEngine, build_pag, parse_program
from repro.api.codec import decode_response, encode
from repro.api.protocol import (
    RemoteStoreStats,
    StatsResponse,
    StoreStatsRequest,
    StoreStatsResponse,
)
from repro.bench.generator import GeneratorConfig
from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cacheserver.client import ShardLink, ShardUnavailable
from repro.cacheserver.faults import (
    BREAKER_OPEN,
    CLIENT_KINDS,
    SERVER_KINDS,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    RetryPolicy,
    corrupt_line,
)
from repro.cacheserver.server import ShardServer
from repro.cacheserver.store import entry_method
from repro.clients import SafeCastClient

SRC = """
class Thing { }
class Other { }
class Helper {
  static method make() { t = new Thing; u = t; return u; }
}
class Main {
  static method main() {
    a = Helper::make();
    b = a;
    o = new Other;
  }
}
"""

#: Fast backoff so chaos runs recover within the test budget; the
#: schedule's determinism is unaffected (jitter is seeded, not random).
CHAOS_RETRY = RetryPolicy(initial=0.01, max_delay=0.05)

#: One schedule per client-side fault kind, each with an explicit rule
#: forcing its kind at op 1 — ``faults_injected > 0`` is guaranteed by
#: construction, not by hoping the rate draws fire — plus a mixed
#: high-rate schedule.  8 seeds, every client kind covered.
CLIENT_SCHEDULES = [
    FaultSchedule(
        seed=index,
        rate=0.2,
        kinds=(kind,),
        rules=(FaultRule(kind, 1),),
    )
    for index, kind in enumerate(CLIENT_KINDS)
] + [
    FaultSchedule(
        seed=99,
        rate=0.35,
        kinds=CLIENT_KINDS,
        rules=(FaultRule("disconnect", 1),),
    )
]

#: One schedule per server-side fault kind (includes blank-restart,
#: which only makes sense server-side), same forced-rule construction.
SERVER_SCHEDULES = [
    FaultSchedule(
        seed=50 + index,
        rate=0.15,
        kinds=(kind,),
        rules=(FaultRule(kind, 1),),
    )
    for index, kind in enumerate(SERVER_KINDS)
]


def _async_server_cls():
    from repro.cacheserver.aserver import AsyncShardServer

    return AsyncShardServer


TIERS = [
    pytest.param(lambda: ShardServer, id="threaded"),
    pytest.param(_async_server_cls, id="async"),
]


def canonical(result):
    return (
        result.complete,
        frozenset(
            (str(obj.object_id), ctx.to_tuple()) for obj, ctx in result.pairs
        ),
    )


def run_workload(instance, servers=None, fault_schedule=None):
    """One SafeCast pass over ``instance``; canonical answers + engine."""
    if servers is None:
        policy = bench_engine_policy()
    else:
        policy = bench_engine_policy(
            cache=CachePolicy(
                remote=tuple(server.address for server in servers),
                remote_timeout=1.0,
                retry=CHAOS_RETRY,
                fault_schedule=fault_schedule,
            )
        )
    engine = PointsToEngine(instance.pag, policy)
    client = SafeCastClient(instance.pag)
    _verdicts, batch = client.run_engine(engine, dedupe=False, reorder=False)
    return [canonical(result) for result in batch.results], engine


@pytest.fixture(scope="module")
def figure4():
    instance = load_benchmark("jython", scale=0.3)
    answers, _engine = run_workload(instance)
    return instance, answers


@pytest.fixture(scope="module")
def generated():
    config = GeneratorConfig(
        seed=7,
        domain_classes=4,
        data_classes=3,
        box_variants=2,
        fields_per_class=2,
        workers_per_class=2,
        stmts_per_worker=4,
    )
    instance = load_benchmark("jython", config=config)
    answers, _engine = run_workload(instance)
    return instance, answers


class FakeClock:
    """A hand-advanced monotonic clock for breaker/backoff tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# the headline soak: every fault kind, both tiers, identical answers
# ----------------------------------------------------------------------
class TestChaosIdentity:
    @pytest.mark.parametrize("server_cls", TIERS)
    def test_client_fault_battery_figure4(self, server_cls, figure4):
        instance, baseline = figure4
        for schedule in CLIENT_SCHEDULES:
            servers = [server_cls()(i, 2).start() for i in range(2)]
            try:
                answers, engine = run_workload(
                    instance, servers, fault_schedule=schedule
                )
                remote = engine.stats().remote
            finally:
                for server in servers:
                    server.stop()
            spec = schedule.to_spec()
            assert answers == baseline, spec
            assert remote.faults > 0, spec
            # Every injected fault that cost an answer was accounted as
            # a fall-open decision (delays cost nothing and truncation
            # of a response the op retried may heal, so >=, not ==).
            assert remote.degraded >= 0, spec
            assert len(remote.breaker_state) == 2, spec

    @pytest.mark.parametrize("server_cls", TIERS)
    def test_server_fault_battery_figure4(self, server_cls, figure4):
        instance, baseline = figure4
        for schedule in SERVER_SCHEDULES:
            servers = [
                server_cls()(i, 2, faults=schedule).start() for i in range(2)
            ]
            try:
                answers, engine = run_workload(instance, servers)
                injected = sum(
                    server.faults.total_injected() for server in servers
                )
                remote = engine.stats().remote
            finally:
                for server in servers:
                    server.stop()
            spec = schedule.to_spec()
            assert answers == baseline, spec
            assert injected > 0, spec
            assert remote is not None, spec

    @pytest.mark.parametrize("server_cls", TIERS)
    def test_generator_workload_under_mixed_chaos(self, server_cls, generated):
        instance, baseline = generated
        client_schedule = CLIENT_SCHEDULES[-1]
        server_schedule = SERVER_SCHEDULES[-1]  # blank-restart
        servers = [
            server_cls()(i, 2, faults=server_schedule).start()
            for i in range(2)
        ]
        try:
            answers, engine = run_workload(
                instance, servers, fault_schedule=client_schedule
            )
            remote = engine.stats().remote
        finally:
            for server in servers:
                server.stop()
        assert answers == baseline
        assert remote.faults > 0

    def test_schedules_cover_every_fault_kind(self):
        covered = set()
        for schedule in CLIENT_SCHEDULES + SERVER_SCHEDULES:
            covered.update(schedule.kinds)
        assert covered == set(CLIENT_KINDS) | set(SERVER_KINDS)
        assert len(CLIENT_SCHEDULES) + len(SERVER_SCHEDULES) >= 8
        seeds = [s.seed for s in CLIENT_SCHEDULES + SERVER_SCHEDULES]
        assert len(seeds) == len(set(seeds))

    def test_schedule_specs_round_trip(self):
        for schedule in CLIENT_SCHEDULES + SERVER_SCHEDULES:
            assert FaultSchedule.parse(schedule.to_spec()) == schedule


# ----------------------------------------------------------------------
# breaker: bounded error cost against a dead fleet
# ----------------------------------------------------------------------
class TestBreakerBounds:
    def test_dead_fleet_attempts_bounded_by_backoff_ladder(self):
        """With every shard down, a link makes at most
        ``attempts_within(window)`` real connection attempts per window:
        one probe per backoff cycle, everything else fails fast."""
        retry = RetryPolicy(initial=0.05, multiplier=2.0, max_delay=2.0)
        clock = FakeClock()
        # connect-refused at rate 1.0: every *allowed* attempt is
        # refused before touching the network, and the injector's op
        # count is exactly the number of real attempts made.
        injector = FaultInjector(
            FaultSchedule(seed=1, rate=1.0, kinds=("connect-refused",)),
            side="client",
        )
        link = ShardLink(
            "127.0.0.1:9", timeout=0.2, retry=retry,
            faults=injector, clock=clock,
        )
        window = 60.0
        while clock.now < window:
            with pytest.raises(ShardUnavailable):
                link.request("{}")
            clock.now += 0.01
        attempts = injector.total_injected()
        bound = retry.attempts_within(window, key=link.breaker.key)
        assert 0 < attempts <= bound + 1
        # And the ladder is dramatically tighter than hammering: 6000
        # calls were made, only a backoff-ladder's worth hit the wire.
        assert attempts < 100
        assert link.breaker.state == BREAKER_OPEN
        assert link.breaker.trips == attempts

    def test_two_links_do_not_retry_in_lockstep(self):
        """Satellite regression: sibling links share a failure instant
        but NOT a reopen instant — the jitter key is the address, so a
        cluster-wide outage does not produce a reconnect storm."""
        retry = RetryPolicy(initial=0.5, multiplier=2.0, max_delay=8.0)
        clock = FakeClock()
        a = ShardLink("127.0.0.1:40001", retry=retry, clock=clock)
        b = ShardLink("127.0.0.1:40002", retry=retry, clock=clock)
        a.breaker.record_failure()
        b.breaker.record_failure()
        assert a.breaker.state == b.breaker.state == BREAKER_OPEN
        assert a.breaker.opened_until != b.breaker.opened_until
        # The divergence is structural, not a one-cycle accident.
        delays_a = [retry.delay_for(c, key=a.breaker.key) for c in range(6)]
        delays_b = [retry.delay_for(c, key=b.breaker.key) for c in range(6)]
        assert delays_a != delays_b

    def test_half_open_probe_recovers_a_healed_link(self):
        retry = RetryPolicy(initial=0.05, multiplier=2.0, max_delay=1.0)
        clock = FakeClock()
        server = ShardServer(0, 1).start()
        try:
            link = ShardLink(
                server.address, timeout=2.0, retry=retry, clock=clock
            )
            link.breaker.record_failure()
            assert not link.breaker.allow()
            # Advance past the open window: the next call is the single
            # half-open probe, and a live server closes the breaker.
            clock.now = link.breaker.opened_until + 0.001
            response = decode_response(
                link.request(encode(StoreStatsRequest()))
            )
            assert isinstance(response, StoreStatsResponse)
            assert link.breaker.state == "closed"
            assert link.breaker.probes >= 1
            link.close()
        finally:
            server.stop()


# ----------------------------------------------------------------------
# hostile reconnect-and-seed
# ----------------------------------------------------------------------
def _warm_engine_against(server):
    from repro import EnginePolicy

    pag = build_pag(parse_program(SRC))
    policy = EnginePolicy(
        cache=CachePolicy(
            remote=(server.address,), remote_timeout=2.0, retry=CHAOS_RETRY
        ),
        parallelism=1,
    )
    engine = PointsToEngine(pag, policy)
    plain = PointsToEngine(
        build_pag(parse_program(SRC)), EnginePolicy(parallelism=1)
    )
    queries = []
    for qname in sorted(pag.methods()):
        for node in pag.nodes_of_method(qname):
            if node.is_local_var:
                queries.append((qname, node.name))
    queries = sorted(queries)
    baseline = [canonical(r) for r in plain.query_batch(queries)]
    warm = [canonical(r) for r in engine.query_batch(queries)]
    assert warm == baseline
    return engine, queries, baseline


class TestHostileSeeding:
    def _restart_blank(self, server):
        from repro.cacheserver.aserver import AsyncShardServer

        port = server.port
        server.stop()
        return AsyncShardServer(0, 1, port=port).start()

    def test_corrupted_seed_lines_do_not_poison_answers(self):
        from repro.cacheserver.aserver import AsyncShardServer

        server = AsyncShardServer(0, 1).start()
        engine, queries, baseline = _warm_engine_against(server)
        replacement = self._restart_blank(server)
        try:
            link = engine.cache._links[0]
            original = link.seed_provider
            link.seed_provider = lambda: [
                corrupt_line(line) for line in original()
            ]
            with pytest.raises(ShardUnavailable):
                link.request(encode(StoreStatsRequest()))
            link.breaker.reset()
            # The reconnect flight carries garbage seed lines; the
            # server answers each with a typed error, the seed ack
            # degrades gracefully, and the triggering request still
            # succeeds.
            response = decode_response(
                link.request(encode(StoreStatsRequest()))
            )
            assert isinstance(response, StoreStatsResponse)
            remote = engine.cache.remote_stats()
            assert remote.reconnects == 1
            assert remote.seeded_entries == 0  # nothing adoptable landed
            answers = [canonical(r) for r in engine.query_batch(queries)]
            assert answers == baseline
        finally:
            replacement.stop()

    def test_shard_dying_mid_seed_falls_open_then_recovers(self):
        from repro.cacheserver.aserver import AsyncShardServer

        server = AsyncShardServer(0, 1).start()
        engine, queries, baseline = _warm_engine_against(server)
        served = len(server.store)
        assert served > 0
        replacement = self._restart_blank(server)
        link = engine.cache._links[0]
        with pytest.raises(ShardUnavailable):
            link.request(encode(StoreStatsRequest()))
        link.breaker.reset()
        original = link.seed_provider

        def dying_provider():
            # The replacement dies while the client assembles its seed
            # flight: the exchange must fail cleanly (no partial seed
            # adopted), and the *next* recovery must still seed fully.
            lines = list(original())
            replacement.stop()
            return lines

        link.seed_provider = dying_provider
        with pytest.raises(ShardUnavailable):
            link.request(encode(StoreStatsRequest()))
        link.seed_provider = original
        answers = [canonical(r) for r in engine.query_batch(queries)]
        assert answers == baseline
        # Second replacement on the same port: recovery re-seeds fully.
        second = AsyncShardServer(0, 1, port=replacement.port).start()
        try:
            link.breaker.reset()
            response = decode_response(
                link.request(encode(StoreStatsRequest()))
            )
            assert isinstance(response, StoreStatsResponse)
            assert response.stats.entries == served
        finally:
            second.stop()

    def test_stale_epoch_refusal_during_seeding(self):
        from repro.cacheserver.aserver import AsyncShardServer

        server = AsyncShardServer(0, 1).start()
        engine, queries, baseline = _warm_engine_against(server)
        seeded_methods = sorted(
            {
                entry_method(entry)
                for entry in server.store.entries_for_methods()
            }
        )
        assert seeded_methods
        replacement = self._restart_blank(server)
        try:
            # The replacement comes back with one method's epoch far
            # ahead of this client's view (another client edited while
            # we were away): seeds for it are refused stale-epoch, the
            # rest land, and answers never regress.
            replacement.store.invalidate_method(seeded_methods[0], epoch=5)
            link = engine.cache._links[0]
            with pytest.raises(ShardUnavailable):
                link.request(encode(StoreStatsRequest()))
            link.breaker.reset()
            response = decode_response(
                link.request(encode(StoreStatsRequest()))
            )
            assert isinstance(response, StoreStatsResponse)
            remote = engine.cache.remote_stats()
            assert remote.reconnects == 1
            answers = [canonical(r) for r in engine.query_batch(queries)]
            assert answers == baseline
        finally:
            replacement.stop()


# ----------------------------------------------------------------------
# protocol 1.6 stats rows, through the wire
# ----------------------------------------------------------------------
def _stats_response(remote):
    return StatsResponse(
        analysis="ppta", queries=1, executed=1, batches=1, deduped=0,
        steps=1, incomplete=0, edits=0, remote=remote,
    )


class TestFailureStatsOnTheWire:
    def test_remote_stats_rows_round_trip(self):
        stats = RemoteStoreStats(
            shards=2,
            remote_hits=3,
            faults=7,
            degraded=4,
            breaker_state=("open", "closed"),
        )
        decoded = decode_response(
            encode(_stats_response(remote=stats))
        )
        assert isinstance(decoded, StatsResponse)
        assert decoded.remote.faults == 7
        assert decoded.remote.degraded == 4
        assert decoded.remote.breaker_state == ("open", "closed")

    def test_live_engine_reports_breaker_and_degraded_rows(self):
        schedule = FaultSchedule(
            seed=3, rate=0.0, rules=(FaultRule("disconnect", 1),)
        )
        server = ShardServer(0, 1).start()
        try:
            instance = load_benchmark("jython", scale=0.1)
            _answers, engine = run_workload(
                instance, [server], fault_schedule=schedule
            )
            stats = engine.stats()
            decoded = decode_response(
                encode(_stats_response(remote=stats.remote))
            )
            assert decoded.remote.faults >= 1
            assert decoded.remote.degraded >= 1
            assert decoded.remote.breaker_state[0] in (
                "closed", "open", "half-open",
            )
        finally:
            server.stop()


# ----------------------------------------------------------------------
# no orphans: every chaos server releases its port on stop
# ----------------------------------------------------------------------
class TestNoOrphans:
    @pytest.mark.parametrize("server_cls", TIERS)
    def test_chaos_server_stop_releases_the_port(self, server_cls):
        import socket

        schedule = SERVER_SCHEDULES[0]
        server = server_cls()(0, 1, faults=schedule).start()
        link = ShardLink(server.address, timeout=2.0, retry=CHAOS_RETRY)
        try:
            link.request(encode(StoreStatsRequest()))
        except ShardUnavailable:
            pass  # the schedule may fault the very first op
        link.close()
        host, port = server.host, server.port
        server.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
