"""One shared battery for every summary-store backend.

The engine treats every :class:`~repro.analysis.summaries
.SummaryBackend` as interchangeable — ``lookup``/``store``/``spawn``/
``invalidate_method``/``entries_by_recency``/``stats_snapshot`` with
exactly reconciling accounting.  This suite runs the same battery
against every local backend (unbounded, LRU-bounded, cost-aware,
sharded, bounded-sharded) **and** the remote-backed store stub over
live in-process shard servers, so no backend's surface can silently
drift: a method added to the base contract fails here until every
backend grows it.
"""

import pytest

from repro import (
    BoundedSummaryCache,
    CostAwareSummaryCache,
    ShardedSummaryCache,
    SummaryCache,
)
from repro.analysis.ppta import PptaResult
from repro.analysis.summaries import SummaryStore
from repro.cacheserver.client import RemoteSummaryCache
from repro.cacheserver.server import ShardServer
from repro.cfl.rsm import S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.nodes import LocalNode, ObjectNode

#: name -> (factory, is_lru): caps are generous enough that the battery
#: never evicts, so accounting assertions hold for every variant alike.
STORE_VARIANTS = {
    "unbounded": (lambda: SummaryCache(), False),
    "bounded": (lambda: BoundedSummaryCache(max_entries=64, max_facts=4096), True),
    "cost": (lambda: CostAwareSummaryCache(max_entries=64, max_facts=4096), True),
    "sharded": (lambda: ShardedSummaryCache(shards=4), False),
    "sharded-bounded": (
        lambda: ShardedSummaryCache(shards=4, max_entries=64, max_facts=4096),
        True,
    ),
    "remote": (None, False),  # built per test over fresh shard servers
}


@pytest.fixture(params=sorted(STORE_VARIANTS), ids=sorted(STORE_VARIANTS))
def variant(request):
    factory, is_lru = STORE_VARIANTS[request.param]
    if request.param == "remote":
        servers = [ShardServer(i, 2).start() for i in range(2)]
        store = RemoteSummaryCache(tuple(s.address for s in servers), timeout=2.0)
        yield store, is_lru
        store.close()
        for server in servers:
            server.stop()
        return
    yield factory(), is_lru


# PAG nodes compare by identity (the PAG interns them); the battery
# interns its fixtures the same way, so summaries built twice from the
# same spec are value-equal — as in production, where every summary for
# a key is computed over one program's interned nodes.
_NODES = {}
_OBJECTS = {}


def node(method="C.m", name="x"):
    return _NODES.setdefault((method, name), LocalNode(method, name))


def obj(i=0, method="C.m"):
    return _OBJECTS.setdefault((i, method), ObjectNode(f"o{i}", "Thing", method))


def summary(n_objects=1, n_boundaries=0, method="C.m"):
    return PptaResult(
        tuple(obj(i, method) for i in range(n_objects)),
        tuple(
            (node(method, f"b{i}"), EMPTY_STACK, S2) for i in range(n_boundaries)
        ),
    )


class TestContract:
    def test_lookup_miss_then_hit(self, variant):
        store, _lru = variant
        key_node = node()
        assert store.lookup(key_node, EMPTY_STACK, S1) is None
        memo = summary()
        store.store(key_node, EMPTY_STACK, S1, memo)
        assert store.lookup(key_node, EMPTY_STACK, S1) is memo
        assert (store.hits, store.misses) == (1, 1)
        assert (key_node, EMPTY_STACK, S1) in store
        assert len(store) == 1

    def test_duplicate_store_keeps_entry_and_accounting(self, variant):
        store, _lru = variant
        key_node = node()
        memo = summary(n_objects=3)
        assert store.store(key_node, EMPTY_STACK, S1, memo) is True
        # Equal re-store: kept, recency refreshed, contents unchanged.
        assert store.store(key_node, EMPTY_STACK, S1, summary(n_objects=3)) is False
        assert len(store) == 1
        assert store.total_facts() == 3
        assert store.lookup(key_node, EMPTY_STACK, S1) is memo

    def test_differing_store_replaces_the_resident_memo(self, variant):
        # The cross-program-version self-heal rule, uniform across
        # backends: a publish that disagrees with the resident entry
        # (possible only around an edit the store missed) wins.
        store, _lru = variant
        key_node = node()
        store.store(key_node, EMPTY_STACK, S1, summary(n_objects=3))
        fresh = summary(n_objects=1)
        assert store.store(key_node, EMPTY_STACK, S1, fresh) is True
        assert len(store) == 1
        assert store.total_facts() == 1
        assert store.lookup(key_node, EMPTY_STACK, S1) is fresh

    def test_spawn_is_empty_with_same_policy(self, variant):
        store, _lru = variant
        store.store(node(), EMPTY_STACK, S1, summary())
        clone = store.spawn()
        assert type(clone) is type(store)
        assert len(clone) == 0
        assert clone.max_entries == store.max_entries
        assert clone.max_facts == store.max_facts
        assert clone.concurrent_safe == store.concurrent_safe
        if isinstance(store, ShardedSummaryCache):
            assert clone.n_shards == store.n_shards

    def test_invalidate_method_drops_exactly_its_keys(self, variant):
        store, _lru = variant
        for i in range(3):
            store.store(node("A.m", f"v{i}"), EMPTY_STACK, S1, summary(method="A.m"))
        survivor = node("B.n", "z")
        store.store(survivor, EMPTY_STACK, S2, summary(method="B.n"))
        assert store.invalidate_method("A.m") == 3
        assert store.invalidated == 3
        assert len(store) == 1
        assert (survivor, EMPTY_STACK, S2) in store
        assert store.invalidate_method("A.m") == 0
        # Dropped keys miss again (and recompute can be re-stored).
        assert store.lookup(node("A.m", "v0"), EMPTY_STACK, S1) is None

    def test_entries_by_recency_lists_everything_both_ways(self, variant):
        store, _lru = variant
        nodes = [node("A.m", f"v{i}") for i in range(5)]
        for key_node in nodes:
            store.store(key_node, EMPTY_STACK, S1, summary(method="A.m"))
        coldest = [key for key, _ in store.entries_by_recency(hottest_first=False)]
        hottest = [key for key, _ in store.entries_by_recency(hottest_first=True)]
        assert len(coldest) == len(hottest) == len(store) == 5
        assert set(coldest) == set(hottest)
        # All keys share one method, hence (for sharded stores) one
        # shard, so the two directions are exact mirrors.
        assert hottest == list(reversed(coldest))

    def test_lru_recency_follows_lookups(self, variant):
        store, is_lru = variant
        nodes = [node("A.m", f"v{i}") for i in range(3)]
        for key_node in nodes:
            store.store(key_node, EMPTY_STACK, S1, summary(method="A.m"))
        store.lookup(nodes[0], EMPTY_STACK, S1)
        hottest = [key for key, _ in store.entries_by_recency(hottest_first=True)]
        if is_lru:
            assert hottest[0] == (nodes[0], EMPTY_STACK, S1)
        else:
            # Documented fallback: insertion order stands in for recency.
            assert hottest[0] == (nodes[2], EMPTY_STACK, S1)

    def test_promote_refreshes_recency_without_probes(self, variant):
        store, is_lru = variant
        nodes = [node("A.m", f"v{i}") for i in range(3)]
        for key_node in nodes:
            store.store(key_node, EMPTY_STACK, S1, summary(method="A.m"))
        probes_before = (store.hits, store.misses)
        store.promote((nodes[0], EMPTY_STACK, S1))
        assert (store.hits, store.misses) == probes_before
        if is_lru:
            hottest = next(iter(store.entries_by_recency(hottest_first=True)))[0]
            assert hottest == (nodes[0], EMPTY_STACK, S1)

    def test_stats_snapshot_reconciles(self, variant):
        store, _lru = variant
        for i in range(4):
            store.store(
                node("A.m", f"v{i}"), EMPTY_STACK, S1,
                summary(n_objects=2, n_boundaries=1, method="A.m"),
            )
        store.store(node("B.n", "w"), EMPTY_STACK, S2, summary(method="B.n"))
        for probe in ("v0", "v1", "nope"):
            store.lookup(node("A.m", probe), EMPTY_STACK, S1)
        store.invalidate_method("B.n")
        snap = store.stats_snapshot()
        assert snap.entries == len(store)
        assert snap.facts == store.total_facts()
        assert snap.facts == sum(s.size for _key, s in store.entries())
        assert snap.hits + snap.misses == snap.probes == 3
        assert snap.hit_rate == snap.hits / snap.probes
        assert snap.invalidated == 1
        assert snap.approx_bytes == store.approx_bytes()
        assert snap.max_entries == store.max_entries
        assert snap.max_facts == store.max_facts
        assert snap.bounded == (
            store.max_entries is not None or store.max_facts is not None
        )

    def test_clear_resets_everything(self, variant):
        store, _lru = variant
        store.store(node(), EMPTY_STACK, S1, summary())
        store.lookup(node(), EMPTY_STACK, S1)
        store.clear()
        snap = store.stats_snapshot()
        assert len(store) == 0
        assert (snap.entries, snap.facts, snap.hits, snap.misses) == (0, 0, 0, 0)
        assert store.summary_point_count() == 0

    def test_restore_counters_round_trips_accounting(self, variant):
        store, _lru = variant
        store.store(node("A.m", "v"), EMPTY_STACK, S1, summary(method="A.m"))
        store.lookup(node("A.m", "v"), EMPTY_STACK, S1)
        store.lookup(node("A.m", "w"), EMPTY_STACK, S1)
        # Nonzero invalidation accounting, so a backend that forgets to
        # restore the non-probe counters cannot pass by accident.
        store.store(node("B.n", "z"), EMPTY_STACK, S2, summary(method="B.n"))
        assert store.invalidate_method("B.n") == 1
        clone = store.spawn()
        for (key_node, stack, state), memo in store.entries_by_recency(
            hottest_first=False
        ):
            clone.store(key_node, stack, state, memo)
        if isinstance(store, ShardedSummaryCache):
            clone.restore_counters(store.shard_snapshots())
        else:
            clone.restore_counters(store.stats_snapshot())
        assert clone.stats_snapshot() == store.stats_snapshot()


@pytest.mark.parametrize(
    "mirror_factory",
    [
        lambda: ShardedSummaryCache(shards=2),
        lambda: RemoteSummaryCache(("127.0.0.1:1",)),  # never connected
    ],
    ids=["sharded", "remote"],
)
def test_mirrors_cover_the_summary_store_surface(mirror_factory):
    """Every public attribute of the base contract must exist on every
    mirror backend — the drift guard this suite is named for."""
    mirror = mirror_factory()
    public = [name for name in vars(SummaryStore) if not name.startswith("_")]
    public += ["__len__", "__contains__", "hits", "misses", "evictions",
               "invalidated", "stats_snapshot", "bind_pag", "eviction",
               "concurrent_safe", "has_room", "promote", "spawn"]
    missing = [name for name in public if not hasattr(mirror, name)]
    assert not missing, f"{type(mirror).__name__} lacks {missing}"
