"""Cost-aware eviction (``CachePolicy(eviction="cost")``) vs. LRU.

The ROADMAP's "smarter admission/eviction" item: summaries record the
PPTA steps that built them (:attr:`~repro.analysis.ppta.PptaResult
.steps`), so a bounded store can evict by *recomputation value* — the
Greedy-Dual rule (priority = inflation clock + steps-to-recompute per
byte) — instead of recency alone.  Pinned here:

* the mechanics: cheap entries evict before expensive ones, the clock
  ages stale expensive entries out, equal scores degenerate to LRU;
* eviction never changes answers (it only forgets memos);
* the regression the satellite asks for: on bounded-budget Figure-4
  replays, cost-aware eviction completes in strictly fewer steps than
  LRU at the same budget (configurations found by sweep; step counts
  are deterministic, so these are exact regressions);
* the policy round-trips through snapshots (``eviction`` + per-entry
  ``steps``).
"""

import pytest

from repro import (
    BoundedSummaryCache,
    CostAwareSummaryCache,
    PointsToEngine,
    ShardedSummaryCache,
)
from repro.analysis.ppta import PptaResult
from repro.api.snapshot import SummarySnapshot
from repro.bench.batching import split_batches
from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cfl.rsm import S1
from repro.cfl.stacks import EMPTY_STACK
from repro.engine import CachePolicy
from repro.pag.nodes import LocalNode, ObjectNode


def node(name, method="A.m"):
    return LocalNode(method, name)


def summary(steps, n_objects=1, method="A.m"):
    return PptaResult(
        tuple(ObjectNode(f"o{steps}-{i}", "Thing", method) for i in range(n_objects)),
        (),
        steps=steps,
    )


class TestMechanics:
    def test_cheapest_per_byte_evicts_first(self):
        store = CostAwareSummaryCache(max_entries=2)
        pricey, cheap, incoming = node("pricey"), node("cheap"), node("incoming")
        store.store(pricey, EMPTY_STACK, S1, summary(steps=1000))
        store.store(cheap, EMPTY_STACK, S1, summary(steps=1))
        store.store(incoming, EMPTY_STACK, S1, summary(steps=10))
        assert (pricey, EMPTY_STACK, S1) in store
        assert (cheap, EMPTY_STACK, S1) not in store
        assert store.evictions == 1

    def test_clock_ages_out_stale_expensive_entries(self):
        store = CostAwareSummaryCache(max_entries=2)
        stale, hot = node("stale"), node("hot")
        store.store(stale, EMPTY_STACK, S1, summary(steps=50))
        store.store(hot, EMPTY_STACK, S1, summary(steps=1))
        # Repeated traffic on cheap entries keeps inflating the clock;
        # each eviction advances it, so the stale entry's fixed priority
        # eventually becomes the minimum and it leaves.
        for i in range(60):
            store.store(node(f"churn{i}"), EMPTY_STACK, S1, summary(steps=1))
            store.store(hot, EMPTY_STACK, S1, summary(steps=1))  # active use
        assert (stale, EMPTY_STACK, S1) not in store
        assert (hot, EMPTY_STACK, S1) in store

    def test_equal_scores_degenerate_to_lru(self):
        nodes = [node(f"v{i}") for i in range(4)]
        cost = CostAwareSummaryCache(max_entries=3)
        lru = BoundedSummaryCache(max_entries=3)
        orders = {}
        for label, store in (("cost", cost), ("lru", lru)):
            for key_node in nodes[:3]:
                store.store(key_node, EMPTY_STACK, S1, summary(steps=7))
            store.lookup(nodes[0], EMPTY_STACK, S1)
            store.store(nodes[3], EMPTY_STACK, S1, summary(steps=7))
            orders[label] = [k for k, _ in store.entries()]
        assert orders["cost"] == orders["lru"]

    def test_invalidate_and_eviction_compose(self):
        store = CostAwareSummaryCache(max_entries=4)
        for i in range(4):
            store.store(node(f"v{i}"), EMPTY_STACK, S1, summary(steps=i + 1))
        assert store.invalidate_method("A.m") == 4
        assert len(store) == 0
        # The priority table must not leak invalidated keys.
        assert store._priority == {}

    def test_unbounded_cost_configurations_are_refused(self):
        # eviction="cost" with no ceiling would never evict — every
        # layer refuses it instead of accepting a silently inert policy.
        with pytest.raises(ValueError, match="inert"):
            CostAwareSummaryCache()
        with pytest.raises(ValueError, match="inert"):
            ShardedSummaryCache(shards=2, eviction="cost")
        with pytest.raises(ValueError, match="inert"):
            CachePolicy(eviction="cost")
        assert CachePolicy(eviction="cost", max_facts=100).bounded

    def test_sharded_cost_store(self):
        store = ShardedSummaryCache(shards=2, max_entries=4, eviction="cost")
        assert store.eviction == "cost"
        clone = store.spawn()
        assert clone.eviction == "cost"
        for i in range(8):
            store.store(node(f"v{i}", method=f"M{i}.m"), EMPTY_STACK, S1,
                        summary(steps=i, method=f"M{i}.m"))
        assert len(store) <= 4


#: (benchmark, client, max_facts) cells where the sweep found cost-aware
#: eviction strictly beating LRU; step counts are deterministic, so
#: these are exact regressions, not statistical ones.
REPLAY_CELLS = [
    ("jython", "NullDeref", 400),
    ("soot-c", "SafeCast", 200),
]


@pytest.mark.parametrize("name,client_name,cap", REPLAY_CELLS)
def test_cost_beats_lru_on_bounded_figure4_replay(name, client_name, cap):
    from repro.clients import ALL_CLIENTS

    client_cls = {cls.name: cls for cls in ALL_CLIENTS}[client_name]
    instance = load_benchmark(name, scale=1.0)
    client = client_cls(instance.pag)
    batches = split_batches(client.queries(), 10)

    totals, verdicts = {}, {}
    for eviction in ("lru", "cost"):
        policy = bench_engine_policy(
            cache=CachePolicy(max_facts=cap, eviction=eviction)
        )
        engine = PointsToEngine(instance.pag, policy)
        steps = 0
        answers = []
        for batch in batches:
            batch_verdicts, result = client.run_engine(
                engine, batch, dedupe=False, reorder=False
            )
            steps += result.stats.steps
            answers.extend(batch_verdicts)
        totals[eviction] = steps
        verdicts[eviction] = answers
    # Eviction policy is cost-only: identical verdicts, fewer steps.
    assert verdicts["cost"] == verdicts["lru"]
    assert totals["cost"] < totals["lru"], totals


def test_snapshot_round_trips_cost_policy_and_steps(figure2_pag=None):
    from repro import build_pag, parse_program

    src = """
    class Thing { }
    class Main {
      static method main() {
        a = new Thing;
        b = a;
        c = b;
      }
    }
    """
    pag = build_pag(parse_program(src))
    engine = PointsToEngine(
        pag,
        bench_engine_policy(
            cache=CachePolicy(max_entries=8, eviction="cost")
        ),
    )
    engine.query_name("Main.main", "c")
    store = engine.cache
    assert isinstance(store, CostAwareSummaryCache)
    recorded = [s.steps for _k, s in store.entries()]
    assert any(steps > 0 for steps in recorded)

    snapshot = SummarySnapshot.loads(SummarySnapshot.capture(store).dumps())
    assert snapshot.eviction == "cost"
    restored = snapshot.restore(pag)
    assert isinstance(restored, CostAwareSummaryCache)
    assert [s.steps for _k, s in restored.entries()] == recorded
    assert restored.stats_snapshot() == store.stats_snapshot()
