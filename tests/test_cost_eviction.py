"""Cost-aware eviction (``CachePolicy(eviction="cost")``) vs. LRU.

The ROADMAP's "smarter admission/eviction" item: summaries record the
PPTA steps that built them (:attr:`~repro.analysis.ppta.PptaResult
.steps`), so a bounded store can evict by *recomputation value* — the
Greedy-Dual rule (priority = inflation clock + steps-to-recompute per
byte) — instead of recency alone.  Pinned here:

* the mechanics: cheap entries evict before expensive ones, the clock
  ages stale expensive entries out, equal scores degenerate to LRU;
* eviction never changes answers (it only forgets memos);
* the regression the satellite asks for: on bounded-budget Figure-4
  replays, cost-aware eviction completes in strictly fewer steps than
  LRU at the same budget (configurations found by sweep; step counts
  are deterministic, so these are exact regressions);
* the policy round-trips through snapshots (``eviction`` + per-entry
  ``steps``).
"""

import pytest

from repro import (
    BoundedSummaryCache,
    CostAwareSummaryCache,
    PointsToEngine,
    ShardedSummaryCache,
)
from repro.analysis.ppta import PptaResult
from repro.analysis.summaries import entry_cost_score
from repro.api.snapshot import SummarySnapshot
from repro.bench.batching import split_batches
from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cfl.rsm import S1
from repro.cfl.stacks import EMPTY_STACK
from repro.engine import CachePolicy
from repro.pag.nodes import LocalNode, ObjectNode


def node(name, method="A.m"):
    return LocalNode(method, name)


def summary(steps, n_objects=1, method="A.m"):
    return PptaResult(
        tuple(ObjectNode(f"o{steps}-{i}", "Thing", method) for i in range(n_objects)),
        (),
        steps=steps,
    )


class TestMechanics:
    def test_cheapest_per_byte_evicts_first(self):
        store = CostAwareSummaryCache(max_entries=2)
        pricey, cheap, incoming = node("pricey"), node("cheap"), node("incoming")
        store.store(pricey, EMPTY_STACK, S1, summary(steps=1000))
        store.store(cheap, EMPTY_STACK, S1, summary(steps=1))
        store.store(incoming, EMPTY_STACK, S1, summary(steps=10))
        assert (pricey, EMPTY_STACK, S1) in store
        assert (cheap, EMPTY_STACK, S1) not in store
        assert store.evictions == 1

    def test_clock_ages_out_stale_expensive_entries(self):
        store = CostAwareSummaryCache(max_entries=2)
        stale, hot = node("stale"), node("hot")
        store.store(stale, EMPTY_STACK, S1, summary(steps=50))
        store.store(hot, EMPTY_STACK, S1, summary(steps=1))
        # Repeated traffic on cheap entries keeps inflating the clock;
        # each eviction advances it, so the stale entry's fixed priority
        # eventually becomes the minimum and it leaves.
        for i in range(60):
            store.store(node(f"churn{i}"), EMPTY_STACK, S1, summary(steps=1))
            store.store(hot, EMPTY_STACK, S1, summary(steps=1))  # active use
        assert (stale, EMPTY_STACK, S1) not in store
        assert (hot, EMPTY_STACK, S1) in store

    def test_equal_scores_degenerate_to_lru(self):
        nodes = [node(f"v{i}") for i in range(4)]
        cost = CostAwareSummaryCache(max_entries=3)
        lru = BoundedSummaryCache(max_entries=3)
        orders = {}
        for label, store in (("cost", cost), ("lru", lru)):
            for key_node in nodes[:3]:
                store.store(key_node, EMPTY_STACK, S1, summary(steps=7))
            store.lookup(nodes[0], EMPTY_STACK, S1)
            store.store(nodes[3], EMPTY_STACK, S1, summary(steps=7))
            orders[label] = [k for k, _ in store.entries()]
        assert orders["cost"] == orders["lru"]

    def test_invalidate_and_eviction_compose(self):
        store = CostAwareSummaryCache(max_entries=4)
        for i in range(4):
            store.store(node(f"v{i}"), EMPTY_STACK, S1, summary(steps=i + 1))
        assert store.invalidate_method("A.m") == 4
        assert len(store) == 0
        # The rank table must not leak invalidated keys (the heap may
        # keep stale records — they are lazily discarded on pop).
        assert store._rank == {}

    def test_unbounded_cost_configurations_are_refused(self):
        # eviction="cost" with no ceiling would never evict — every
        # layer refuses it instead of accepting a silently inert policy.
        with pytest.raises(ValueError, match="inert"):
            CostAwareSummaryCache()
        with pytest.raises(ValueError, match="inert"):
            ShardedSummaryCache(shards=2, eviction="cost")
        with pytest.raises(ValueError, match="inert"):
            CachePolicy(eviction="cost")
        assert CachePolicy(eviction="cost", max_facts=100).bounded

    def test_sharded_cost_store(self):
        store = ShardedSummaryCache(shards=2, max_entries=4, eviction="cost")
        assert store.eviction == "cost"
        clone = store.spawn()
        assert clone.eviction == "cost"
        for i in range(8):
            store.store(node(f"v{i}", method=f"M{i}.m"), EMPTY_STACK, S1,
                        summary(steps=i, method=f"M{i}.m"))
        assert len(store) <= 4


#: (benchmark, client, max_facts) cells where the sweep found cost-aware
#: eviction strictly beating LRU; step counts are deterministic, so
#: these are exact regressions, not statistical ones.
REPLAY_CELLS = [
    ("jython", "NullDeref", 400),
    ("soot-c", "SafeCast", 200),
]


@pytest.mark.parametrize("name,client_name,cap", REPLAY_CELLS)
def test_cost_beats_lru_on_bounded_figure4_replay(name, client_name, cap):
    from repro.clients import ALL_CLIENTS

    client_cls = {cls.name: cls for cls in ALL_CLIENTS}[client_name]
    instance = load_benchmark(name, scale=1.0)
    client = client_cls(instance.pag)
    batches = split_batches(client.queries(), 10)

    totals, verdicts = {}, {}
    for eviction in ("lru", "cost"):
        policy = bench_engine_policy(
            cache=CachePolicy(max_facts=cap, eviction=eviction)
        )
        engine = PointsToEngine(instance.pag, policy)
        steps = 0
        answers = []
        for batch in batches:
            batch_verdicts, result = client.run_engine(
                engine, batch, dedupe=False, reorder=False
            )
            steps += result.stats.steps
            answers.extend(batch_verdicts)
        totals[eviction] = steps
        verdicts[eviction] = answers
    # Eviction policy is cost-only: identical verdicts, fewer steps.
    assert verdicts["cost"] == verdicts["lru"]
    assert totals["cost"] < totals["lru"], totals


def test_snapshot_round_trips_cost_policy_and_steps(figure2_pag=None):
    from repro import build_pag, parse_program

    src = """
    class Thing { }
    class Main {
      static method main() {
        a = new Thing;
        b = a;
        c = b;
      }
    }
    """
    pag = build_pag(parse_program(src))
    engine = PointsToEngine(
        pag,
        bench_engine_policy(
            cache=CachePolicy(max_entries=8, eviction="cost")
        ),
    )
    engine.query_name("Main.main", "c")
    store = engine.cache
    assert isinstance(store, CostAwareSummaryCache)
    recorded = [s.steps for _k, s in store.entries()]
    assert any(steps > 0 for steps in recorded)

    snapshot = SummarySnapshot.loads(SummarySnapshot.capture(store).dumps())
    assert snapshot.eviction == "cost"
    restored = snapshot.restore(pag)
    assert isinstance(restored, CostAwareSummaryCache)
    assert [s.steps for _k, s in restored.entries()] == recorded
    assert restored.stats_snapshot() == store.stats_snapshot()


class TestHeapVictimIndex:
    """The heap-backed victim index must pick exactly the victims the
    O(n) scan picked (min priority, ties to the least-recently-used
    entry), and admission control must refuse oversized summaries."""

    def test_heap_matches_scan_oracle_on_random_workload(self):
        import random

        rng = random.Random(20260728)
        store = CostAwareSummaryCache(max_entries=12)

        # Oracle: replay the same Greedy-Dual rule with a plain scan
        # over (priority, recency) mirrors.
        oracle_priority = {}
        oracle_recency = {}
        oracle_clock = [0.0]
        oracle_entries = []  # keys, coldest first
        oracle_evictions = []

        def oracle_store(key, summ):
            if key in oracle_priority:
                oracle_entries.remove(key)
                oracle_entries.append(key)
                oracle_priority[key] = oracle_clock[0] + entry_cost_score(summ)
                return
            oracle_priority[key] = oracle_clock[0] + entry_cost_score(summ)
            oracle_entries.append(key)
            while len(oracle_entries) > 12 and len(oracle_entries) > 1:
                victim, victim_priority = None, None
                for k in oracle_entries:
                    p = oracle_priority[k]
                    if victim_priority is None or p < victim_priority:
                        victim, victim_priority = k, p
                oracle_clock[0] = victim_priority
                oracle_entries.remove(victim)
                del oracle_priority[victim]
                oracle_evictions.append(victim)

        def oracle_touch(key):
            if key in oracle_priority:
                oracle_entries.remove(key)
                oracle_entries.append(key)
                # refreshed against the current clock; summary size is
                # recovered from the live store (identical payloads)
                oracle_priority[key] = oracle_clock[0] + scores[key]

        scores = {}
        live = {}
        for round_index in range(400):
            op = rng.random()
            name = f"v{rng.randrange(40)}"
            key = (node(name), EMPTY_STACK, S1)
            if op < 0.7:
                summ = summary(steps=rng.randrange(0, 200))
                scores[key] = entry_cost_score(summ)
                live[key] = summ
                store.store(*key, summ)
                oracle_store(key, summ)
            else:
                store.lookup(*key)
                oracle_touch(key)
            resident = {k for k, _ in store.entries()}
            assert resident == set(oracle_entries), f"round {round_index}"

    def test_admission_control_refuses_oversized_summaries(self):
        store = CostAwareSummaryCache(max_entries=8, admit_facts=2)
        small_node, big_node = node("small"), node("big")
        small = summary(steps=10)
        assert small.size <= 2
        assert store.store(small_node, EMPTY_STACK, S1, small) is True

        big = PptaResult(
            (),
            tuple(
                (node(f"b{i}"), EMPTY_STACK, S1) for i in range(5)
            ),
            steps=1000,
        )
        assert big.size > 2
        assert store.store(big_node, EMPTY_STACK, S1, big) is False
        assert store.rejected == 1
        assert (big_node, EMPTY_STACK, S1) not in store
        # The small resident entry is untouched.
        assert store.lookup(small_node, EMPTY_STACK, S1) is small
        # spawn() preserves the admission policy.
        assert store.spawn().admit_facts == 2

    def test_admission_applies_to_replacements_too(self):
        """The self-heal path (a differing publish for a resident key)
        must not smuggle an oversized summary past admission: the stale
        resident is dropped, the replacement is refused."""
        store = CostAwareSummaryCache(max_entries=8, admit_facts=2)
        key_node = node("k")
        assert store.store(key_node, EMPTY_STACK, S1, summary(steps=3)) is True
        oversized = PptaResult(
            (), tuple((node(f"b{i}"), EMPTY_STACK, S1) for i in range(5))
        )
        assert store.store(key_node, EMPTY_STACK, S1, oversized) is True
        assert store.rejected == 1
        assert (key_node, EMPTY_STACK, S1) not in store
        assert store.total_facts() == 0
        # An equal oversized re-store of a resident oversized entry is
        # still a recency-only refresh (size unchanged, nothing to
        # admit) — mirror of the base rule.
        relaxed = CostAwareSummaryCache(max_entries=8, admit_facts=10)
        assert relaxed.store(key_node, EMPTY_STACK, S1, oversized) is True
        relaxed.admit_facts = 2
        assert relaxed.store(key_node, EMPTY_STACK, S1, oversized) is False
        assert relaxed.rejected == 0
        assert (key_node, EMPTY_STACK, S1) in relaxed

    def test_admission_default_admits_everything(self):
        store = CostAwareSummaryCache(max_entries=4)
        big = PptaResult(
            (), tuple((node(f"b{i}"), EMPTY_STACK, S1) for i in range(50))
        )
        assert store.store(node("big"), EMPTY_STACK, S1, big) is True
        assert store.rejected == 0
