"""Tests for the IR validator — one test per well-formedness rule."""

import pytest

from repro.ir.parser import parse_program
from repro.util.errors import ValidationError


def expect_invalid(source, fragment, entry="Main.main"):
    with pytest.raises(ValidationError) as exc:
        parse_program(source, entry=entry)
    assert fragment in str(exc.value)


class TestEntry:
    def test_missing_entry(self):
        expect_invalid("class A { }", "does not exist")

    def test_entry_must_be_static(self):
        expect_invalid(
            "class Main { method main() { x = new Main; } }",
            "must be static",
        )

    def test_entry_must_take_no_params(self):
        expect_invalid(
            "class Main { static method main(argv) { x = new Main; } }",
            "no parameters",
        )

    def test_custom_entry_point(self):
        program = parse_program(
            "class App { static method run() { x = new App; } }",
            entry="App.run",
        )
        assert program.entry_method.name == "run"


class TestClassRules:
    def test_unknown_superclass(self):
        expect_invalid(
            "class A extends Ghost { } class Main { static method main() { x = new A; } }",
            "unknown class",
        )

    def test_inheritance_cycle(self):
        expect_invalid(
            """
            class A extends B { }
            class B extends A { }
            class Main { static method main() { x = new A; } }
            """,
            "cycle",
        )


class TestStatementRules:
    def test_alloc_unknown_class(self):
        expect_invalid(
            "class Main { static method main() { x = new Ghost; } }",
            "unknown class",
        )

    def test_cast_unknown_class(self):
        expect_invalid(
            "class Main { static method main() { x = new Main; y = (Ghost) x; } }",
            "unknown class",
        )

    def test_undeclared_instance_field(self):
        expect_invalid(
            "class Main { static method main() { x = new Main; y = x.ghost; } }",
            "undeclared instance field",
        )

    def test_undeclared_static_field(self):
        expect_invalid(
            """
            class G { static field ok; }
            class Main { static method main() { x = G::missing; } }
            """,
            "undeclared static field",
        )

    def test_static_access_unknown_class(self):
        expect_invalid(
            "class Main { static method main() { x = Ghost::f; } }",
            "unknown class",
        )

    def test_this_in_static_method(self):
        expect_invalid(
            """
            class Main {
              field f;
              static method main() { x = this.f; }
            }
            """,
            "'this' used in static method",
        )

    def test_virtual_call_no_understanding_class(self):
        expect_invalid(
            "class Main { static method main() { x = new Main; x.ghost(); } }",
            "no class understands",
        )

    def test_virtual_call_arity_mismatch(self):
        expect_invalid(
            """
            class A { method m(a, b) { return a; } }
            class Main { static method main() { x = new A; x.m(x); } }
            """,
            "arity mismatch",
        )

    def test_static_call_unknown_class(self):
        expect_invalid(
            "class Main { static method main() { Ghost::m(); } }",
            "unknown class",
        )

    def test_static_call_unresolved(self):
        expect_invalid(
            "class Main { static method main() { Main::ghost(); } }",
            "unresolved static call",
        )

    def test_static_call_to_instance_method(self):
        expect_invalid(
            """
            class A { method m() { return this; } }
            class Main { static method main() { A::m(); } }
            """,
            "static call to instance method",
        )

    def test_static_call_arity_mismatch(self):
        expect_invalid(
            """
            class A { static method m(a) { return a; } }
            class Main { static method main() { A::m(); } }
            """,
            "arity mismatch",
        )

    def test_inherited_field_access_ok(self):
        # field declared in a superclass is fine at any use site
        program = parse_program(
            """
            class Base { field f; }
            class Sub extends Base { }
            class Main {
              static method main() {
                s = new Sub;
                x = s.f;
              }
            }
            """
        )
        assert program.is_finalized

    def test_multiple_problems_all_reported(self):
        with pytest.raises(ValidationError) as exc:
            parse_program(
                """
                class Main {
                  static method main() {
                    a = new Ghost1;
                    b = new Ghost2;
                  }
                }
                """
            )
        message = str(exc.value)
        assert "2 problem(s)" in message

    def test_valid_program_returns_program(self):
        source = "class Main { static method main() { x = new Main; } }"
        program = parse_program(source)
        assert program.counts()["statements"] == 1
