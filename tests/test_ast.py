"""Tests for the IR data model (Program/ClassDef/Method/Statements)."""

import pytest

from repro.ir.ast import (
    Alloc,
    Call,
    ClassDef,
    Copy,
    Method,
    NullAssign,
    Program,
    Return,
    NULL_CLASS,
    THIS,
)
from repro.util.errors import IRError


def small_program():
    program = Program(entry="Main.main")
    main_cls = ClassDef("Main")
    main = Method("main", "Main", is_static=True)
    main.add(Alloc("x", "Main"))
    main.add(Call("y", "x", None, "m", ["x"]))
    main.add(NullAssign("n"))
    main_cls.add_method(main)
    m = Method("m", "Main", params=["a"])
    m.add(Return("a"))
    main_cls.add_method(m)
    program.add_class(main_cls)
    return program


class TestProgram:
    def test_requires_finalize(self):
        program = small_program()
        with pytest.raises(IRError):
            program.methods()

    def test_finalize_assigns_site_ids(self):
        program = small_program().finalize()
        (site_id,) = program.call_sites()
        method, call = program.call_site(site_id)
        assert method.qualified_name == "Main.main"
        assert call.site_id == site_id

    def test_finalize_assigns_object_ids(self):
        program = small_program().finalize()
        allocations = program.allocations()
        assert len(allocations) == 2  # alloc + null
        ids = {stmt.object_id for _m, stmt in allocations}
        assert len(ids) == 2

    def test_finalize_idempotent(self):
        program = small_program().finalize()
        first = {sid: stmt.site_id for sid, (_m, stmt) in program.call_sites().items()}
        program.finalize()
        second = {sid: stmt.site_id for sid, (_m, stmt) in program.call_sites().items()}
        assert first == second

    def test_lookup_method(self):
        program = small_program().finalize()
        assert program.lookup_method("Main.m").name == "m"

    def test_lookup_unknown_method(self):
        program = small_program().finalize()
        with pytest.raises(IRError):
            program.lookup_method("Main.ghost")

    def test_lookup_unknown_class(self):
        program = small_program().finalize()
        with pytest.raises(IRError):
            program.lookup_class("Ghost")

    def test_duplicate_class_rejected(self):
        program = small_program()
        with pytest.raises(IRError):
            program.add_class(ClassDef("Main"))

    def test_counts(self):
        program = small_program().finalize()
        counts = program.counts()
        assert counts == {"classes": 1, "methods": 2, "statements": 4}

    def test_statements_iterates_all(self):
        program = small_program().finalize()
        kinds = [stmt.kind for _m, stmt in program.statements()]
        assert sorted(kinds) == ["alloc", "call", "null", "return"]

    def test_unknown_call_site(self):
        program = small_program().finalize()
        with pytest.raises(IRError):
            program.call_site(999)


class TestMethod:
    def test_all_params_instance(self):
        m = Method("m", "C", params=["a", "b"])
        assert m.all_params == [THIS, "a", "b"]

    def test_all_params_static(self):
        m = Method("m", "C", params=["a"], is_static=True)
        assert m.all_params == ["a"]

    def test_qualified_name(self):
        assert Method("m", "C").qualified_name == "C.m"

    def test_local_names_collects_everything(self):
        m = Method("m", "C", params=["p"])
        m.add(Alloc("x", "C"))
        m.add(Copy("y", "x"))
        m.add(Call("z", "y", None, "m", ["p"]))
        names = m.local_names()
        assert set(names) >= {THIS, "p", "x", "y", "z"}

    def test_return_statements(self):
        m = Method("m", "C")
        m.add(Return("a"))
        m.add(Return("b"))
        assert [r.source for r in m.return_statements()] == ["a", "b"]


class TestClassDef:
    def test_duplicate_field(self):
        c = ClassDef("C")
        c.add_field("f")
        with pytest.raises(IRError):
            c.add_field("f")

    def test_duplicate_static_field(self):
        c = ClassDef("C")
        c.add_static_field("g")
        with pytest.raises(IRError):
            c.add_static_field("g")

    def test_duplicate_method(self):
        c = ClassDef("C")
        c.add_method(Method("m", "C"))
        with pytest.raises(IRError):
            c.add_method(Method("m", "C"))


class TestStatements:
    def test_call_needs_exactly_one_callee_form(self):
        with pytest.raises(IRError):
            Call("t", "recv", "Cls", "m", [])  # both receiver and class
        with pytest.raises(IRError):
            Call("t", None, None, "m", [])  # neither

    def test_null_class_name(self):
        assert NullAssign("x").class_name == NULL_CLASS

    def test_reprs_render(self):
        assert "new C" in repr(Alloc("x", "C"))
        assert "null" in repr(NullAssign("x"))
        assert "return" in repr(Return("x"))
        assert "recv.m" in repr(Call("t", "recv", None, "m", ["a"]))
        assert "C::m" in repr(Call(None, None, "C", "m", []))
