"""Regression tests for off-loop dispatch in the asyncio serving tier.

The original ``AsyncLineServer`` called ``handle_line`` inline on the
event loop (repro-lint ASYNC001).  A handler that blocked — or, under
connection multiplexing, waited on a request *behind* it in the read
order — wedged every connection on the process.  Dispatch now runs on
a bounded ``ThreadPoolExecutor``; these tests pin the properties that
fix bought, and the one it must not break (``dispatch_workers=1``
keeps strict handler serialization for single-threaded services).
"""

import json
import socket
import threading
import time

import pytest

from repro.cacheserver.aserver import AsyncLineServer


def _tagged(rid, **fields):
    fields["id"] = rid
    return (json.dumps(fields) + "\n").encode("utf-8")


def _read_lines(sock, count, timeout=10.0):
    sock.settimeout(timeout)
    reader = sock.makefile("r", encoding="utf-8")
    try:
        return [json.loads(reader.readline()) for _ in range(count)]
    finally:
        reader.close()


class TestOffLoopDispatch:
    def test_cross_dependent_tagged_requests_both_complete(self):
        """The deadlock regression: request 'a' blocks until request
        'b' (later on the same connection) runs.  With inline dispatch
        'a' wedges the read loop so 'b' is never dispatched — the pair
        deadlocks.  With a worker pool, both complete."""
        release = threading.Event()

        def handler(line):
            op = json.loads(line)["op"]
            if op == "wait":
                assert release.wait(timeout=8.0), "release never dispatched"
            else:
                release.set()
            return json.dumps({"kind": "done", "op": op})

        with AsyncLineServer(handler, dispatch_workers=2) as server:
            server.start()
            sock = socket.create_connection(
                (server.host, server.port), timeout=10.0
            )
            try:
                sock.sendall(_tagged("a", op="wait") + _tagged("b", op="release"))
                responses = _read_lines(sock, 2)
            finally:
                sock.close()
        assert {r["id"] for r in responses} == {"a", "b"}
        assert all(r["kind"] == "done" for r in responses)

    def test_blocked_handler_does_not_stall_other_connections(self):
        """A handler stuck on connection 1 must not stop the loop from
        serving connection 2 — the event loop only ever moves bytes."""
        release = threading.Event()

        def handler(line):
            op = json.loads(line)["op"]
            if op == "wait":
                assert release.wait(timeout=8.0), "second connection starved"
            return json.dumps({"kind": "done", "op": op})

        with AsyncLineServer(handler, dispatch_workers=2) as server:
            server.start()
            stuck = socket.create_connection(
                (server.host, server.port), timeout=10.0
            )
            other = socket.create_connection(
                (server.host, server.port), timeout=10.0
            )
            try:
                stuck.sendall(_tagged("slow", op="wait"))
                time.sleep(0.1)  # let the slow dispatch occupy a worker
                other.sendall(_tagged("quick", op="ping"))
                (quick,) = _read_lines(other, 1)
                assert quick["id"] == "quick"
                release.set()
                (slow,) = _read_lines(stuck, 1)
                assert slow["id"] == "slow"
            finally:
                stuck.close()
                other.close()

    def test_single_worker_keeps_handlers_serialized(self):
        """``dispatch_workers=1`` (the ``repro-serve --listen`` mount)
        still dispatches off the loop, but never two handlers at once —
        unlocked single-engine services rely on that."""
        active = 0
        overlap = []
        gate = threading.Lock()

        def handler(line):
            nonlocal active
            with gate:
                active += 1
                overlap.append(active)
            time.sleep(0.05)
            with gate:
                active -= 1
            return json.dumps({"kind": "done"})

        with AsyncLineServer(handler, dispatch_workers=1) as server:
            server.start()
            sock = socket.create_connection(
                (server.host, server.port), timeout=10.0
            )
            try:
                sock.sendall(b"".join(_tagged(str(i)) for i in range(4)))
                responses = _read_lines(sock, 4)
            finally:
                sock.close()
        assert {r["id"] for r in responses} == {"0", "1", "2", "3"}
        assert max(overlap) == 1

    def test_dispatch_runs_off_the_event_loop_thread(self):
        """The handler thread is a pool worker, not the loop thread."""
        seen = []

        def handler(line):
            seen.append(threading.current_thread().name)
            return json.dumps({"kind": "done"})

        with AsyncLineServer(handler) as server:
            server.start()
            loop_thread = server._thread.name
            sock = socket.create_connection(
                (server.host, server.port), timeout=10.0
            )
            try:
                sock.sendall(_tagged("x"))
                _read_lines(sock, 1)
            finally:
                sock.close()
        assert seen and seen[0] != loop_thread
        assert seen[0].startswith("repro-dispatch")

    def test_worker_count_floor_is_one(self):
        server = AsyncLineServer(lambda line: line, dispatch_workers=0)
        try:
            assert server._dispatch_workers == 1
        finally:
            server.stop()


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
