"""Behavioural tests for DYNSUM: summaries, reuse, invalidation."""

import pytest

from repro import AnalysisConfig, DynSum, NoRefine, SummaryCache

from tests.conftest import (
    FIELD_ALIAS_SOURCE,
    FIGURE2_SOURCE,
    GLOBALS_SOURCE,
    RECURSION_SOURCE,
    STRAIGHTLINE_SOURCE,
    TWO_CALLS_SOURCE,
    make_pag,
)


def classes(result):
    return sorted(obj.class_name for obj in result.objects)


ALL_SOURCES = [
    STRAIGHTLINE_SOURCE,
    FIELD_ALIAS_SOURCE,
    TWO_CALLS_SOURCE,
    GLOBALS_SOURCE,
    RECURSION_SOURCE,
    FIGURE2_SOURCE,
]


@pytest.mark.parametrize("source", ALL_SOURCES)
def test_matches_norefine_everywhere(source):
    """Precision equality on every local variable of every method."""
    pag = make_pag(source)
    dynsum = DynSum(pag)
    norefine = NoRefine(pag)
    for node in pag.local_var_nodes():
        ds = dynsum.points_to(node)
        nr = norefine.points_to(node)
        assert ds.complete and nr.complete
        assert ds.pairs == nr.pairs, f"mismatch at {node!r}"


class TestCacheBehaviour:
    def test_cache_shared_between_instances(self):
        pag = make_pag(FIGURE2_SOURCE)
        shared = SummaryCache()
        first = DynSum(pag, cache=shared)
        second = DynSum(pag, cache=shared)
        r1 = first.points_to_name("Main.main", "s1")
        r2 = second.points_to_name("Main.main", "s1")
        assert r2.pairs == r1.pairs
        assert r2.steps <= r1.steps

    def test_query_order_does_not_change_answers(self):
        pag = make_pag(FIGURE2_SOURCE)
        variables = ["s1", "s2", "v1", "v2", "c1", "c2"]
        forward = DynSum(pag)
        backward = DynSum(pag)
        res_fwd = {v: forward.points_to_name("Main.main", v).pairs for v in variables}
        res_bwd = {
            v: backward.points_to_name("Main.main", v).pairs
            for v in reversed(variables)
        }
        assert res_fwd == res_bwd

    def test_stats_expose_hits_and_misses(self):
        pag = make_pag(FIGURE2_SOURCE)
        dynsum = DynSum(pag)
        r1 = dynsum.points_to_name("Main.main", "s1")
        assert r1.stats["cache_misses"] > 0
        r2 = dynsum.points_to_name("Main.main", "s1")
        assert r2.stats["cache_hits"] > 0

    def test_incomplete_ppta_not_cached(self):
        pag = make_pag(FIGURE2_SOURCE)
        dynsum = DynSum(pag, AnalysisConfig(budget=3))
        result = dynsum.points_to_name("Main.main", "s1")
        assert not result.complete
        # A partial PPTA must never be stored: re-running with a real
        # budget gives the full answer.
        full = DynSum(pag, cache=dynsum.cache).points_to_name("Main.main", "s1")
        assert classes(full) == ["Integer"]

    def test_summary_point_count_le_entry_count(self):
        pag = make_pag(FIGURE2_SOURCE)
        dynsum = DynSum(pag)
        dynsum.points_to_name("Main.main", "s1")
        assert dynsum.summary_count <= dynsum.cache_entry_count


class TestInvalidation:
    def test_invalidation_preserves_answers(self):
        pag = make_pag(FIGURE2_SOURCE)
        dynsum = DynSum(pag)
        before = dynsum.points_to_name("Main.main", "s1").pairs
        dropped = dynsum.invalidate_method("Vector.get")
        assert dropped > 0
        after = dynsum.points_to_name("Main.main", "s1").pairs
        assert after == before

    def test_invalidation_only_drops_that_method(self):
        pag = make_pag(FIGURE2_SOURCE)
        dynsum = DynSum(pag)
        dynsum.points_to_name("Main.main", "s1")
        entries_before = dynsum.cache_entry_count
        dropped = dynsum.invalidate_method("Vector.get")
        assert dynsum.cache_entry_count == entries_before - dropped

    def test_invalidating_unknown_method_is_noop(self):
        pag = make_pag(FIGURE2_SOURCE)
        dynsum = DynSum(pag)
        dynsum.points_to_name("Main.main", "s1")
        assert dynsum.invalidate_method("No.suchMethod") == 0

    def test_summaries_are_method_local(self):
        """Every cache key's node and every fact in its summary belong to
        the same method — the property method-granular invalidation
        relies on."""
        pag = make_pag(FIGURE2_SOURCE)
        dynsum = DynSum(pag)
        dynsum.points_to_name("Main.main", "s1")
        dynsum.points_to_name("Main.main", "s2")
        for (node, _stack, _state), summary in dynsum.cache._entries.items():
            for obj in summary.objects:
                assert obj.method == node.method
            for bnode, _f, _s in summary.boundaries:
                assert bnode.method == node.method


class TestPrecision:
    def test_context_sensitivity(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        dynsum = DynSum(pag)
        assert classes(dynsum.points_to_name("Main.main", "ra")) == ["A"]
        assert classes(dynsum.points_to_name("Main.main", "rb")) == ["B"]

    def test_globals_context_cleared(self):
        pag = make_pag(GLOBALS_SOURCE)
        result = DynSum(pag).points_to_name("Main.main", "x")
        assert classes(result) == ["A", "B"]

    def test_recursion_terminates(self):
        pag = make_pag(RECURSION_SOURCE)
        result = DynSum(pag).points_to_name("Main.main", "out")
        assert result.complete
        assert classes(result) == ["A"]

    def test_heap_contexts_can_be_disabled(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        plain = DynSum(pag, AnalysisConfig(track_heap_contexts=False))
        result = plain.points_to_name("Main.main", "ra")
        from repro.cfl.stacks import EMPTY_STACK

        assert all(ctx == EMPTY_STACK for _obj, ctx in result.pairs)

    def test_capabilities_row(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        caps = DynSum(pag).capabilities()
        assert caps["memoization"] == "dynamic-across"
        assert caps["reuse"] == "context-independent"
        assert caps["full_precision"] is True
