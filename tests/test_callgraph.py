"""Tests for the CallGraph structure, SCCs and the RTA baseline."""

import pytest

from repro.callgraph.andersen import AndersenAnalysis
from repro.callgraph.cha import rta_call_graph
from repro.callgraph.graph import CallGraph
from repro.ir.parser import parse_program

from tests.conftest import FIGURE2_SOURCE, RECURSION_SOURCE, TWO_CALLS_SOURCE


class TestCallGraphStructure:
    def test_add_edge_marks_reachable(self):
        cg = CallGraph("Main.main")
        assert cg.add_edge(1, "Main.main", "A.m")
        assert cg.is_reachable("Main.main")
        assert cg.is_reachable("A.m")

    def test_duplicate_edge_returns_false(self):
        cg = CallGraph("Main.main")
        cg.add_edge(1, "Main.main", "A.m")
        assert not cg.add_edge(1, "Main.main", "A.m")

    def test_targets_and_callers(self):
        cg = CallGraph("Main.main")
        cg.add_edge(1, "Main.main", "A.m")
        cg.add_edge(1, "Main.main", "B.m")
        assert cg.targets(1) == {"A.m", "B.m"}
        assert cg.call_sites_into("A.m") == {1}
        assert cg.caller_of_site(1) == "Main.main"

    def test_edges_deterministic_order(self):
        cg = CallGraph("Main.main")
        cg.add_edge(2, "Main.main", "B.m")
        cg.add_edge(1, "Main.main", "A.m")
        assert [e[0] for e in cg.edges()] == [1, 2]

    def test_method_successors(self):
        cg = CallGraph("Main.main")
        cg.add_edge(1, "Main.main", "A.m")
        cg.add_edge(2, "A.m", "B.m")
        assert cg.method_successors("Main.main") == {"A.m"}
        assert cg.method_successors("A.m") == {"B.m"}


class TestSccCollapse:
    def test_self_call_is_recursive(self):
        cg = CallGraph("Main.main")
        cg.add_edge(1, "Main.main", "Rec.spin")
        cg.add_edge(2, "Rec.spin", "Rec.spin")
        assert 2 in cg.recursive_sites
        assert 1 not in cg.recursive_sites

    def test_mutual_recursion_detected(self):
        cg = CallGraph("Main.main")
        cg.add_edge(1, "Main.main", "A.f")
        cg.add_edge(2, "A.f", "B.g")
        cg.add_edge(3, "B.g", "A.f")
        assert cg.recursive_sites == {2, 3}
        assert cg.scc_of("A.f") == cg.scc_of("B.g")
        assert cg.scc_of("Main.main") != cg.scc_of("A.f")

    def test_acyclic_graph_has_no_recursive_sites(self):
        cg = CallGraph("Main.main")
        cg.add_edge(1, "Main.main", "A.f")
        cg.add_edge(2, "A.f", "B.g")
        assert cg.recursive_sites == set()

    def test_long_cycle(self):
        cg = CallGraph("M.m")
        names = ["A.a", "B.b", "C.c", "D.d"]
        cg.add_edge(0, "M.m", names[0])
        for index, name in enumerate(names):
            nxt = names[(index + 1) % len(names)]
            cg.add_edge(index + 1, name, nxt)
        assert len({cg.scc_of(n) for n in names}) == 1
        assert cg.recursive_sites == {1, 2, 3, 4}

    def test_deep_chain_no_recursion_blowup(self):
        # Iterative Tarjan must handle deep chains without recursion errors.
        cg = CallGraph("M.m0")
        for index in range(3000):
            cg.add_edge(index, f"M.m{index}", f"M.m{index + 1}")
        assert cg.recursive_sites == set()

    def test_from_real_program(self):
        program = parse_program(RECURSION_SOURCE)
        cg = AndersenAnalysis(program).solve().call_graph
        (recursive_site,) = cg.recursive_sites
        caller = cg.caller_of_site(recursive_site)
        assert caller == "Rec.spin"


class TestRta:
    def test_rta_covers_andersen(self):
        """RTA's call graph over-approximates the Andersen one."""
        for source in (FIGURE2_SOURCE, TWO_CALLS_SOURCE, RECURSION_SOURCE):
            program = parse_program(source)
            precise = AndersenAnalysis(program).solve().call_graph
            coarse = rta_call_graph(program)
            precise_edges = set(precise.edges())
            coarse_edges = set(coarse.edges())
            assert precise_edges <= coarse_edges
            assert precise.reachable_methods <= coarse.reachable_methods

    def test_rta_merges_same_selector(self):
        """RTA links every instantiated class understanding the name;
        Andersen only the receiver's classes."""
        program = parse_program(
            """
            class A { method m() { return this; } }
            class B { method m() { return this; } }
            class Main {
              static method main() {
                a = new A;
                b = new B;
                x = a.m();
              }
            }
            """
        )
        coarse = rta_call_graph(program)
        precise = AndersenAnalysis(program).solve().call_graph
        site = next(iter(coarse.edges()))[0]
        assert coarse.targets(site) == {"A.m", "B.m"}
        assert precise.targets(site) == {"A.m"}

    def test_rta_requires_instantiation(self):
        """A class never instantiated does not receive call edges."""
        program = parse_program(
            """
            class A { method m() { return this; } }
            class Ghost { method m() { return this; } }
            class Main {
              static method main() {
                a = new A;
                x = a.m();
              }
            }
            """
        )
        coarse = rta_call_graph(program)
        assert not coarse.is_reachable("Ghost.m")

    def test_rta_late_instantiation_links_earlier_call(self):
        """A class instantiated in a method discovered after the call
        site still gets linked (the RTA fixpoint)."""
        program = parse_program(
            """
            class A { method m() { return this; } }
            class Maker { static method mk() { a = new A; return a; } }
            class Main {
              static method main() {
                x = ghost.m();
                y = Maker::mk();
              }
            }
            """,
            validate=True,
        )
        coarse = rta_call_graph(program)
        assert coarse.is_reachable("A.m")

    def test_rta_pag_usable_by_analyses(self):
        """PAGs built over the RTA call graph stay sound (supersets)."""
        from repro import NoRefine, build_pag

        program = parse_program(FIGURE2_SOURCE)
        precise_pag = build_pag(program)
        coarse_pag = build_pag(program, call_graph=rta_call_graph(program))
        nr_precise = NoRefine(precise_pag).points_to_name("Main.main", "s1")
        nr_coarse = NoRefine(coarse_pag).points_to_name("Main.main", "s1")
        precise_ids = {o.object_id for o in nr_precise.objects}
        coarse_ids = {o.object_id for o in nr_coarse.objects}
        assert precise_ids <= coarse_ids
