"""The service façade: full request vocabulary, no reachable traceback.

``PointsToService`` must answer query/batch/alias/invalidate/stats over
JSON lines, attach client verdicts that match an in-process client run,
and render *every* malformed or unlucky input as a structured
``ErrorResponse`` — the acceptance bar is that no line of input can
surface a Python traceback.
"""

import io
import json

import pytest

from repro import PointsToEngine, SafeCastClient, build_pag, parse_program
from repro.api import (
    AliasRequest,
    AliasResponse,
    BatchRequest,
    BatchResponse,
    ErrorResponse,
    InvalidateRequest,
    InvalidateResponse,
    PointsToService,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
    decode_response,
    encode,
)
from repro.api.service import main as serve_main
from repro.bench.runner import bench_engine_policy

from conftest import FIGURE2_SOURCE

QUICKSTART_SOURCE = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }
class Kennel {
  field occupant;
  method put(a) { this.occupant = a; }
  method get() {
    r = this.occupant;
    return r;
  }
}
class Main {
  static method main() {
    dogHouse = new Kennel;
    catHouse = new Kennel;
    rex = new Dog;
    tom = new Cat;
    dogHouse.put(rex);
    catHouse.put(tom);
    d = dogHouse.get();
    c = catHouse.get();
    sure = (Dog) d;
    oops = (Dog) c;
  }
}
"""


@pytest.fixture()
def service():
    pag = build_pag(parse_program(QUICKSTART_SOURCE))
    return PointsToService(PointsToEngine(pag, bench_engine_policy()))


class TestVocabulary:
    def test_query(self, service):
        response = service.handle(QueryRequest("Main.main", "d"))
        assert isinstance(response, QueryResponse)
        assert response.complete
        assert [obj.class_name for obj in response.objects] == ["Dog"]
        assert response.verdict is None
        assert response.steps > 0

    def test_query_with_client_verdict(self, service):
        safe = service.handle(
            QueryRequest("Main.main", "d", client="SafeCast", payload=("Dog",))
        )
        assert safe.verdict.status == "safe"
        assert safe.verdict.offenders == ()
        violation = service.handle(
            QueryRequest("Main.main", "c", client="SafeCast", payload=("Dog",))
        )
        assert violation.verdict.status == "violation"
        assert len(violation.verdict.offenders) == 1

    def test_client_verdicts_match_in_process_run(self, service):
        client = SafeCastClient(service.engine.pag)
        expected, _batch = client.run_engine(service.engine)
        response = service.handle(
            BatchRequest(
                queries=tuple(
                    QueryRequest(
                        q.method, q.var, client=q.client, payload=q.payload
                    )
                    for q in client.queries()
                )
            )
        )
        assert [r.verdict.status for r in response.results] == [
            v.status for v in expected
        ]

    def test_batch_aligns_with_request_order(self, service):
        request = BatchRequest(
            queries=(
                QueryRequest("Main.main", "d"),
                QueryRequest("Main.main", "c"),
                QueryRequest("Main.main", "d"),
            )
        )
        response = service.handle(request)
        assert isinstance(response, BatchResponse)
        assert len(response.results) == 3
        assert response.results[0] == response.results[2]
        assert response.stats.n_requests == 3
        assert response.stats.n_unique == 2  # policy dedupe collapsed one
        no_dedupe = service.handle(
            BatchRequest(queries=request.queries, dedupe=False)
        )
        assert no_dedupe.stats.n_unique == 3

    def test_alias(self, service):
        response = service.handle(
            AliasRequest("Main.main", "d", "Main.main", "rex")
        )
        assert isinstance(response, AliasResponse)
        assert response.verdict is True
        assert len(response.witnesses) == 1
        disjoint = service.handle(
            AliasRequest("Main.main", "d", "Main.main", "c")
        )
        assert disjoint.verdict is False

    def test_invalidate_then_stats(self, service):
        service.handle(QueryRequest("Main.main", "d"))
        response = service.handle(InvalidateRequest("Kennel.get"))
        assert isinstance(response, InvalidateResponse)
        assert response.dropped > 0
        stats = service.handle(StatsRequest())
        assert isinstance(stats, StatsResponse)
        assert stats.analysis == "DYNSUM"
        assert stats.queries == 1
        assert stats.cache.invalidated == response.dropped


class TestNoTracebackReachable:
    ADVERSARIAL_LINES = [
        "",
        "not json",
        "[]",
        "42",
        '{"kind":"query"}',
        '{"kind":"query","protocol_version":"9.1"}',
        '{"kind":"nope","protocol_version":"1.0"}',
        '{"kind":"query","method":"Ghost.m","var":"v","protocol_version":"1.0"}',
        '{"kind":"query","method":"Main.main","var":"ghost","protocol_version":"1.0"}',
        '{"kind":"query","method":"Main.main","var":"d","client":"NoSuch",'
        '"protocol_version":"1.0"}',
        '{"kind":"query","method":"Main.main","var":"d","client":"SafeCast",'
        '"payload":[],"protocol_version":"1.0"}',
        '{"kind":"query","method":"Main.main","var":"d","context":["x"],'
        '"protocol_version":"1.0"}',
        '{"kind":"batch","queries":[{"method":"Main.main"}],'
        '"protocol_version":"1.0"}',
        '{"kind":"invalidate","protocol_version":"1.0"}',
        '{"kind":"alias","method1":"Main.main","var1":"d",'
        '"protocol_version":"1.0"}',
    ]

    @pytest.mark.parametrize("line", ADVERSARIAL_LINES)
    def test_every_bad_line_yields_a_typed_error(self, service, line):
        response_line = service.handle_line(line)
        response = decode_response(response_line)
        assert isinstance(response, ErrorResponse)
        assert response.code in (
            "malformed-json",
            "invalid-request",
            "unsupported-version",
            "unknown-kind",
            "unknown-node",
            "unknown-client",
        ), response
        # And the error itself is well-formed canonical JSON.
        assert json.loads(response_line)["kind"] == "error"

    def test_error_codes_are_specific(self, service):
        cases = {
            "not json": "malformed-json",
            '{"kind":"nope","protocol_version":"1.0"}': "unknown-kind",
            '{"kind":"stats","protocol_version":"3.0"}': "unsupported-version",
            '{"kind":"query","method":"Ghost.m","var":"v",'
            '"protocol_version":"1.0"}': "unknown-node",
            '{"kind":"query","method":"Main.main","var":"d",'
            '"client":"NoSuch","protocol_version":"1.0"}': "unknown-client",
        }
        for line, code in cases.items():
            assert decode_response(service.handle_line(line)).code == code

    def test_unknown_client_lists_known_ones(self, service):
        response = decode_response(
            service.handle_line(
                '{"kind":"query","method":"Main.main","var":"d",'
                '"client":"NoSuch","protocol_version":"1.0"}'
            )
        )
        assert "SafeCast" in response.message


class TestJsonLinesLoop:
    def test_serve_round_trip(self, service):
        lines = "\n".join(
            [
                encode(QueryRequest("Main.main", "d")),
                "",  # blank lines are ignored
                "junk",
                encode(StatsRequest()),
            ]
        )
        output = io.StringIO()
        service.serve(io.StringIO(lines + "\n"), output)
        responses = [
            decode_response(line) for line in output.getvalue().splitlines()
        ]
        assert len(responses) == 3
        assert isinstance(responses[0], QueryResponse)
        assert isinstance(responses[1], ErrorResponse)
        assert isinstance(responses[2], StatsResponse)
        # The stats response accounts the one successful query.
        assert responses[2].queries == 1


class TestConsoleEntryPoint:
    def _run(self, argv, stdin_text, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(stdin_text))
        code = serve_main(argv)
        captured = capsys.readouterr()
        return code, captured

    def test_serve_program_file(self, tmp_path, monkeypatch, capsys):
        source = tmp_path / "prog.pir"
        source.write_text(FIGURE2_SOURCE)
        requests = encode(QueryRequest("Main.main", "s1")) + "\n" + "garbage\n"
        code, captured = self._run(
            ["--program", str(source)], requests, monkeypatch, capsys
        )
        assert code == 0
        out_lines = captured.out.splitlines()
        assert len(out_lines) == 2
        first = decode_response(out_lines[0])
        assert isinstance(first, QueryResponse)
        assert [obj.class_name for obj in first.objects] == ["Integer"]
        assert isinstance(decode_response(out_lines[1]), ErrorResponse)
        assert "repro-serve: serving DYNSUM" in captured.err

    def test_save_then_warm_start(self, tmp_path, monkeypatch, capsys):
        source = tmp_path / "prog.pir"
        source.write_text(FIGURE2_SOURCE)
        cache_path = tmp_path / "cache.json"
        request = encode(QueryRequest("Main.main", "s1")) + "\n"

        code, _ = self._run(
            ["--program", str(source), "--save-cache", str(cache_path)],
            request,
            monkeypatch,
            capsys,
        )
        assert code == 0 and cache_path.exists()

        code, captured = self._run(
            ["--program", str(source), "--warm-start", str(cache_path)],
            request,
            monkeypatch,
            capsys,
        )
        assert code == 0
        assert "warm start loaded" in captured.err
        warm = decode_response(captured.out.splitlines()[0])
        assert [obj.class_name for obj in warm.objects] == ["Integer"]

    def test_bad_program_path_fails_cleanly(self, monkeypatch, capsys):
        code, captured = self._run(
            ["--program", "/no/such/file.pir"], "", monkeypatch, capsys
        )
        assert code == 2
        assert "repro-serve:" in captured.err

    def test_save_cache_with_cacheless_analysis_fails_before_serving(
        self, tmp_path, monkeypatch, capsys
    ):
        source = tmp_path / "prog.pir"
        source.write_text(FIGURE2_SOURCE)
        code, captured = self._run(
            ["--program", str(source), "--analysis", "CIPTA",
             "--save-cache", str(tmp_path / "c.json")],
            encode(QueryRequest("Main.main", "s1")) + "\n",
            monkeypatch,
            capsys,
        )
        assert code == 2
        assert "no summary store" in captured.err
        assert captured.out == ""  # refused before answering anything

    def test_unwritable_save_cache_path_fails_cleanly(
        self, tmp_path, monkeypatch, capsys
    ):
        source = tmp_path / "prog.pir"
        source.write_text(FIGURE2_SOURCE)
        code, captured = self._run(
            ["--program", str(source),
             "--save-cache", str(tmp_path / "no" / "such" / "dir" / "c.json")],
            encode(QueryRequest("Main.main", "s1")) + "\n",
            monkeypatch,
            capsys,
        )
        assert code == 2
        assert "repro-serve:" in captured.err
        # The session itself still served before the failing save.
        assert '"kind":"query-result"' in captured.out

    def test_deeply_nested_line_yields_error_response(self, service):
        line = service.handle_line("[" * 100_000 + "]" * 100_000)
        assert json.loads(line)["code"] == "malformed-json"
