"""Unit tests for the SummaryCache."""

from repro.analysis.ppta import PptaResult
from repro.analysis.summaries import SummaryCache
from repro.cfl.rsm import S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.nodes import LocalNode


def node(method="C.m", name="x"):
    return LocalNode(method, name)


def summary(n_objects=1):
    return PptaResult(tuple(f"o{i}" for i in range(n_objects)), ())


class TestLookupStore:
    def test_miss_then_hit(self):
        cache = SummaryCache()
        key_node = node()
        assert cache.lookup(key_node, EMPTY_STACK, S1) is None
        cache.store(key_node, EMPTY_STACK, S1, summary())
        assert cache.lookup(key_node, EMPTY_STACK, S1) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_stacks_distinct_entries(self):
        cache = SummaryCache()
        key_node = node()
        stack = EMPTY_STACK.push(("f", 0))
        cache.store(key_node, EMPTY_STACK, S1, summary())
        assert cache.lookup(key_node, stack, S1) is None

    def test_distinct_states_distinct_entries(self):
        cache = SummaryCache()
        key_node = node()
        cache.store(key_node, EMPTY_STACK, S1, summary())
        assert cache.lookup(key_node, EMPTY_STACK, S2) is None

    def test_store_keeps_equal_memo_replaces_differing_one(self):
        cache = SummaryCache()
        key_node = node()
        first = summary(1)
        assert cache.store(key_node, EMPTY_STACK, S1, first) is True
        # Within one process a re-store is always value-equal (pure
        # memos) and keeps the resident entry, refreshing recency only.
        assert cache.store(key_node, EMPTY_STACK, S1, summary(1)) is False
        assert cache.lookup(key_node, EMPTY_STACK, S1) is first
        # A *differing* memo can only arrive across a program-version
        # boundary (wire store ops, warm start over an edited program);
        # the fresher publish replaces the stale resident — the shard
        # servers' self-heal rule, applied uniformly.
        fresh = summary(5)
        assert cache.store(key_node, EMPTY_STACK, S1, fresh) is True
        assert cache.lookup(key_node, EMPTY_STACK, S1) is fresh
        assert len(cache) == 1
        assert cache.total_facts() == fresh.size

    def test_len_and_contains(self):
        cache = SummaryCache()
        key_node = node()
        cache.store(key_node, EMPTY_STACK, S1, summary())
        assert len(cache) == 1
        assert (key_node, EMPTY_STACK, S1) in cache

    def test_total_facts(self):
        cache = SummaryCache()
        cache.store(node(name="a"), EMPTY_STACK, S1, summary(2))
        cache.store(node(name="b"), EMPTY_STACK, S1, summary(3))
        assert cache.total_facts() == 5

    def test_summary_point_count_collapses_stacks(self):
        cache = SummaryCache()
        key_node = node()
        cache.store(key_node, EMPTY_STACK, S1, summary())
        cache.store(key_node, EMPTY_STACK.push(("f", 0)), S1, summary())
        assert len(cache) == 2
        assert cache.summary_point_count() == 1


class TestInvalidation:
    def test_invalidate_by_method(self):
        cache = SummaryCache()
        in_method = node("C.m", "x")
        other = node("D.n", "y")
        cache.store(in_method, EMPTY_STACK, S1, summary())
        cache.store(other, EMPTY_STACK, S1, summary())
        assert cache.invalidate_method("C.m") == 1
        assert len(cache) == 1
        assert cache.lookup(other, EMPTY_STACK, S1) is not None

    def test_invalidate_unknown_method(self):
        cache = SummaryCache()
        assert cache.invalidate_method("No.where") == 0

    def test_invalidate_twice(self):
        cache = SummaryCache()
        cache.store(node(), EMPTY_STACK, S1, summary())
        assert cache.invalidate_method("C.m") == 1
        assert cache.invalidate_method("C.m") == 0

    def test_clear(self):
        cache = SummaryCache()
        cache.store(node(), EMPTY_STACK, S1, summary())
        cache.lookup(node("Z.z", "q"), EMPTY_STACK, S1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0

    def test_repr(self):
        cache = SummaryCache()
        assert "0 summaries" in repr(cache)
