"""Edge-case behaviours shared across the demand analyses.

Covers the corners the main behavioural suites do not: partially
balanced contexts, explicit initial contexts, static/virtual dispatch
mixtures, inheritance dispatch in the PAG, multi-target call sites, and
the interaction of globals with context clearing.
"""

import pytest

from repro import ContextInsensitivePta, DynSum, NoRefine, RefinePts, StaSum
from repro.cfl.stacks import EMPTY_STACK

from tests.conftest import make_pag

ALL_ANALYSES = (NoRefine, RefinePts, DynSum, StaSum)


def classes(result):
    return sorted(obj.class_name for obj in result.objects)


class TestPartiallyBalancedContexts:
    SOURCE = """
    class A { }
    class B { }
    class Wrapper {
      method wrap(x) {
        y = x;
        return y;
      }
    }
    class Main {
      static method main() {
        w = new Wrapper;
        a = new A;
        b = new B;
        ra = w.wrap(a);
        rb = w.wrap(b);
      }
    }
    """

    @pytest.mark.parametrize("analysis_cls", ALL_ANALYSES)
    def test_query_at_formal_sees_all_callers(self, analysis_cls):
        """A query starting inside the callee (empty context) must
        consider every caller — realizable paths may start mid-call."""
        pag = make_pag(self.SOURCE)
        result = analysis_cls(pag).points_to_name("Wrapper.wrap", "y")
        assert classes(result) == ["A", "B"]

    @pytest.mark.parametrize("analysis_cls", (NoRefine, DynSum))
    def test_initial_context_pins_the_caller(self, analysis_cls):
        pag = make_pag(self.SOURCE)
        site_of_ra = next(
            sid
            for sid, (_m, stmt) in pag.program.call_sites().items()
            if stmt.target == "ra"
        )
        node = pag.find_local("Wrapper.wrap", "y")
        result = analysis_cls(pag).points_to(node, context=EMPTY_STACK.push(site_of_ra))
        assert classes(result) == ["A"]


class TestDispatch:
    SOURCE = """
    class Base {
      method make() {
        b = new Base;
        return b;
      }
    }
    class Derived extends Base {
      method make() {
        d = new Derived;
        return d;
      }
    }
    class Leaf extends Derived { }
    class Main {
      static method main() {
        l = new Leaf;
        out = l.make();
      }
    }
    """

    @pytest.mark.parametrize("analysis_cls", ALL_ANALYSES)
    def test_inherited_override_dispatch(self, analysis_cls):
        """Leaf inherits Derived.make, not Base.make."""
        pag = make_pag(self.SOURCE)
        result = analysis_cls(pag).points_to_name("Main.main", "out")
        assert classes(result) == ["Derived"]

    def test_multi_target_site_unions(self):
        source = """
        class A { method pick() { a = new A; return a; } }
        class B { method pick() { b = new B; return b; } }
        class Holder { field item; }
        class Main {
          static method main() {
            h = new Holder;
            a = new A;
            b = new B;
            h.item = a;
            h.item = b;
            recv = h.item;
            out = recv.pick();
          }
        }
        """
        pag = make_pag(source)
        for analysis_cls in (NoRefine, DynSum):
            result = analysis_cls(pag).points_to_name("Main.main", "out")
            assert classes(result) == ["A", "B"]


class TestGlobals:
    SOURCE = """
    class A { }
    class B { }
    class Shared {
      static field bus;
      static method publish(x) { Shared::bus = x; }
      static method consume() {
        r = Shared::bus;
        return r;
      }
    }
    class Main {
      static method main() {
        a = new A;
        Shared::publish(a);
        got = Shared::consume();
      }
    }
    """

    @pytest.mark.parametrize("analysis_cls", ALL_ANALYSES)
    def test_flow_through_static_field(self, analysis_cls):
        pag = make_pag(self.SOURCE)
        result = analysis_cls(pag).points_to_name("Main.main", "got")
        assert classes(result) == ["A"]

    @pytest.mark.parametrize("analysis_cls", (NoRefine, DynSum))
    def test_query_on_global_node(self, analysis_cls):
        pag = make_pag(self.SOURCE)
        node = pag.global_var("Shared", "bus")
        result = analysis_cls(pag).points_to(node)
        assert classes(result) == ["A"]


class TestChainsThroughEverything:
    SOURCE = """
    class Payload { }
    class Inner { field deep; }
    class Outer { field inner; }
    class Builder {
      static method assemble() {
        p = new Payload;
        i = new Inner;
        i.deep = p;
        o = new Outer;
        o.inner = i;
        return o;
      }
    }
    class Main {
      static method main() {
        o = Builder::assemble();
        i = o.inner;
        p = i.deep;
      }
    }
    """

    @pytest.mark.parametrize("analysis_cls", ALL_ANALYSES)
    def test_two_level_field_path_across_call(self, analysis_cls):
        pag = make_pag(self.SOURCE)
        result = analysis_cls(pag).points_to_name("Main.main", "p")
        assert classes(result) == ["Payload"]

    @pytest.mark.parametrize("analysis_cls", (NoRefine, RefinePts, DynSum))
    def test_intermediate_level(self, analysis_cls):
        pag = make_pag(self.SOURCE)
        result = analysis_cls(pag).points_to_name("Main.main", "i")
        assert classes(result) == ["Inner"]


class TestDegenerateQueries:
    def test_query_variable_with_no_edges_at_all(self):
        pag = make_pag(
            "class Main { static method main() { a = new Main; b = ghost; } }"
        )
        for analysis_cls in ALL_ANALYSES:
            result = analysis_cls(pag).points_to_name("Main.main", "b")
            assert result.objects == frozenset()
            assert result.complete

    def test_self_copy_terminates(self):
        pag = make_pag(
            "class Main { static method main() { a = new Main; a = a; } }"
        )
        for analysis_cls in ALL_ANALYSES:
            result = analysis_cls(pag).points_to_name("Main.main", "a")
            assert classes(result) == ["Main"]

    def test_store_without_matching_load(self):
        pag = make_pag(
            """
            class Cell { field val; }
            class Main {
              static method main() {
                c = new Cell;
                x = new Main;
                c.val = x;
              }
            }
            """
        )
        for analysis_cls in ALL_ANALYSES:
            result = analysis_cls(pag).points_to_name("Main.main", "x")
            assert classes(result) == ["Main"]

    def test_cipta_matches_on_context_free_program(self):
        """With a single call site per method, context sensitivity buys
        nothing: CI and CS answers coincide."""
        source = """
        class A { }
        class Id { method idn(x) { return x; } }
        class Main {
          static method main() {
            i = new Id;
            a = new A;
            out = i.idn(a);
          }
        }
        """
        pag = make_pag(source)
        ci = ContextInsensitivePta(pag).points_to_name("Main.main", "out")
        cs = NoRefine(pag).points_to_name("Main.main", "out")
        assert ci.objects == cs.objects
