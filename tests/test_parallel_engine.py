"""Parallel batch execution — executors and the determinism contract.

The acceptance property of the parallel path: ``query_batch`` on a
thread pool returns **element-wise identical** results to sequential
execution — on the Figure-4 workload and on every shipped example
program.  Summaries are pure, context-independent memos, so parallelism
(like the scheduler's reordering) is only a cost lever; these tests pin
that argument down.

The engine tests honour the ``REPRO_PARALLELISM`` environment variable
for policies that leave ``parallelism`` unset — the CI matrix uses it to
replay this file (and the rest of the engine suite) with a 4-worker pool.
"""

import importlib.util
import pathlib
import sys

import pytest

from repro import (
    CachePolicy,
    EnginePolicy,
    PointsToEngine,
    ShardedSummaryCache,
    build_pag,
    parse_program,
)
from repro.bench.suite import load_benchmark
from repro.clients import ALL_CLIENTS
from repro.engine.executor import (
    PARALLELISM_ENV,
    ParallelExecutor,
    SequentialExecutor,
    default_parallelism,
    make_executor,
)
from repro.util.errors import IRError

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

PARALLEL_WORKERS = 4


def _example_programs():
    """Every PIR program shipped in ``examples/`` — each module-level
    ALL-CAPS source-string constant of each example script."""
    programs = {}
    sys.path.insert(0, str(EXAMPLES_DIR))  # examples import one another
    try:
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            spec = importlib.util.spec_from_file_location(
                f"_example_{path.stem}", path
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            for name, value in vars(module).items():
                if name.isupper() and isinstance(value, str) and "class " in value:
                    programs[f"{path.stem}:{name}"] = value
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
    return programs


EXAMPLE_PROGRAMS = _example_programs()


class TestExecutors:
    def test_make_executor_selects_by_workers(self):
        assert isinstance(make_executor(1), SequentialExecutor)
        assert isinstance(make_executor(0), SequentialExecutor)
        parallel = make_executor(3)
        assert isinstance(parallel, ParallelExecutor)
        assert parallel.parallelism == 3

    def test_map_preserves_item_order(self):
        items = list(range(40))
        for executor in (SequentialExecutor(), ParallelExecutor(4)):
            assert executor.map(lambda x: x * x, items) == [x * x for x in items]

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise ValueError("boom")
            return x

        for executor in (SequentialExecutor(), ParallelExecutor(4)):
            with pytest.raises(ValueError, match="boom"):
                executor.map(boom, range(8))

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(IRError):
            ParallelExecutor(0)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(PARALLELISM_ENV, raising=False)
        assert default_parallelism() == 1
        monkeypatch.setenv(PARALLELISM_ENV, "6")
        assert default_parallelism() == 6
        assert make_executor().parallelism == 6
        monkeypatch.setenv(PARALLELISM_ENV, "not-a-number")
        with pytest.raises(IRError):
            default_parallelism()


def _engines(pag, workers):
    """A sequential and a parallel engine over one PAG, same tunables."""
    sequential = PointsToEngine(pag, EnginePolicy(parallelism=1))
    parallel = PointsToEngine(
        pag,
        EnginePolicy(
            parallelism=workers,
            cache=CachePolicy(shards=2 * workers),
        ),
    )
    return sequential, parallel


def _assert_elementwise_equal(sequential_batch, parallel_batch):
    assert len(sequential_batch) == len(parallel_batch)
    for expected, actual in zip(sequential_batch.results, parallel_batch.results):
        assert actual.pairs == expected.pairs
        assert actual.complete == expected.complete


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(EXAMPLE_PROGRAMS), ids=str)
    def test_parallel_equals_sequential_on_example(self, name):
        """Element-wise determinism over every query the program admits,
        for every shipped example program."""
        pag = build_pag(parse_program(EXAMPLE_PROGRAMS[name]))
        workload = sorted(
            pag.local_var_nodes(), key=lambda n: (str(n.method), str(n.name))
        )
        assert workload  # every shipped example has local variables
        sequential, parallel = _engines(pag, PARALLEL_WORKERS)
        sequential_batch = sequential.query_batch(workload)
        parallel_batch = parallel.query_batch(workload)
        assert parallel_batch.stats.parallelism == PARALLEL_WORKERS
        _assert_elementwise_equal(sequential_batch, parallel_batch)

    def test_parallel_equals_sequential_on_figure4_workload(self):
        """The acceptance property on the paper's Figure-4 program, for
        every client workload."""
        instance = load_benchmark("soot-c", scale=0.5)
        for client_cls in ALL_CLIENTS:
            sequential_engine = PointsToEngine(
                instance.pag, EnginePolicy(max_field_depth=16, parallelism=1)
            )
            parallel_engine = PointsToEngine(
                instance.pag,
                EnginePolicy(
                    max_field_depth=16,
                    parallelism=PARALLEL_WORKERS,
                    cache=CachePolicy(shards=8),
                ),
            )
            client = client_cls(instance.pag)
            sequential_verdicts, sequential_batch = sequential_engine.run_client(client)
            parallel_verdicts, parallel_batch = parallel_engine.run_client(client)
            _assert_elementwise_equal(sequential_batch, parallel_batch)
            assert [v.status for v in parallel_verdicts] == [
                v.status for v in sequential_verdicts
            ]

    def test_parallel_batch_stats_reconcile(self):
        """Aggregated shard stats reconcile exactly after a parallel
        batch: hits + misses == probes, and entry/fact totals equal the
        shard sums."""
        instance = load_benchmark("soot-c", scale=0.5)
        engine = PointsToEngine(
            instance.pag,
            EnginePolicy(
                max_field_depth=16,
                parallelism=PARALLEL_WORKERS,
                cache=CachePolicy(shards=8),
            ),
        )
        client = ALL_CLIENTS[0](instance.pag)
        _verdicts, batch = engine.run_client(client)
        stats = batch.stats
        cache = engine.cache
        snapshot = cache.stats_snapshot()
        shards = cache.shard_snapshots()
        # Cross-source checks: batch-side probe deltas vs. the
        # shard-recorded totals, and the aggregate vs. the shard sums
        # (identities like probes == hits + misses hold by construction
        # and would not catch lost or double-counted probes).
        assert stats.cache_hits + stats.cache_misses == snapshot.probes
        assert snapshot.hits == sum(s.hits for s in shards)
        assert snapshot.misses == sum(s.misses for s in shards)
        assert sum(s.entries for s in shards) == len(cache) == stats.summaries_after
        assert sum(s.facts for s in shards) == cache.total_facts()
        assert stats.summaries_before == 0

    def test_bounded_sharded_cache_never_changes_answers(self):
        """Eviction under a tight sharded cap composes with parallelism:
        answers still match the unbounded sequential reference."""
        instance = load_benchmark("soot-c", scale=0.5)
        reference = PointsToEngine(
            instance.pag, EnginePolicy(max_field_depth=16, parallelism=1)
        )
        capped = PointsToEngine(
            instance.pag,
            EnginePolicy(
                max_field_depth=16,
                parallelism=PARALLEL_WORKERS,
                cache=CachePolicy(max_entries=32, shards=4),
            ),
        )
        client = ALL_CLIENTS[0](instance.pag)
        _v1, reference_batch = reference.run_client(client)
        _v2, capped_batch = capped.run_client(client)
        _assert_elementwise_equal(reference_batch, capped_batch)
        assert len(capped.cache) <= 32


class TestEngineIntegration:
    SOURCE = EXAMPLE_PROGRAMS["quickstart:SOURCE"]

    def test_default_policy_honours_environment(self):
        """Engine-built stores and executors follow REPRO_PARALLELISM
        when the policy leaves parallelism unset — this is what the CI
        parallel job drives."""
        pag = build_pag(parse_program(self.SOURCE))
        engine = PointsToEngine(pag)
        expected = default_parallelism()
        batch = engine.query_batch([("Main.main", "d"), ("Main.main", "c")])
        assert batch.stats.parallelism == expected
        if expected > 1:
            assert isinstance(engine.cache, ShardedSummaryCache)

    def test_parallel_engine_autoshards_cache(self):
        pag = build_pag(parse_program(self.SOURCE))
        engine = PointsToEngine(pag, EnginePolicy(parallelism=3))
        assert isinstance(engine.cache, ShardedSummaryCache)
        assert engine.cache.n_shards == 3

    def test_wrapped_plain_cache_degrades_to_sequential(self):
        """A parallel policy over an unsynchronised store must not fan
        out — the engine degrades that batch to sequential execution."""
        from repro import DynSum

        pag = build_pag(parse_program(self.SOURCE))
        engine = PointsToEngine.wrap(DynSum(pag), EnginePolicy(parallelism=4))
        batch = engine.query_batch([("Main.main", "d"), ("Main.main", "c")])
        assert batch.stats.parallelism == 1

    def test_per_call_parallelism_override(self):
        pag = build_pag(parse_program(self.SOURCE))
        engine = PointsToEngine(
            pag, EnginePolicy(parallelism=4, cache=CachePolicy(shards=4))
        )
        batch = engine.query_batch(
            [("Main.main", "d"), ("Main.main", "c")], parallelism=1
        )
        assert batch.stats.parallelism == 1

    def test_incremental_spawn_preserves_shard_policy(self):
        """Edits migrate into a spawn with the same shard/capacity
        policy, so a parallel engine stays parallel-safe across edits."""
        program = parse_program(self.SOURCE)
        engine = PointsToEngine.for_program(
            program,
            EnginePolicy(
                parallelism=PARALLEL_WORKERS,
                cache=CachePolicy(shards=4, max_entries=64),
            ),
        )
        before = engine.query_name("Main.main", "d")
        session = engine.edit_session()
        report = session.edit("Kennel.put", lambda method: None)
        cache = engine.cache
        assert isinstance(cache, ShardedSummaryCache)
        assert cache.n_shards == 4
        assert cache.max_entries == 64
        assert report.migrated == len(cache)
        after = engine.query_name("Main.main", "d")
        assert {repr(o) for o in after.objects} == {repr(o) for o in before.objects}
