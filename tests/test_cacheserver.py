"""The shared cache service, in-process: servers, client stub, protocol.

The acceptance property of the whole subsystem: an engine whose summary
store is a :class:`~repro.cacheserver.client.RemoteSummaryCache` returns
**element-wise identical** answers to a plain local engine — on every
shipped example program and the Figure-4 workload — with the service
up, down from the start, or killed mid-batch.  Summaries are pure
memos; the service can only move cost.

Shard servers here run as in-process background threads (the transport
is real TCP either way); the multi-process deployment — real server
processes, real client processes, cross-process invalidation — is
covered by ``tests/test_shared_cache_proc.py``.
"""

import importlib.util
import pathlib
import sys
from types import SimpleNamespace

import pytest

from repro import (
    CachePolicy,
    EnginePolicy,
    PointsToEngine,
    build_pag,
    parse_program,
)
from repro.api.codec import decode_response, encode
from repro.api.protocol import (
    ErrorResponse,
    InvalidateResponse,
    LookupRequest,
    LookupResponse,
    QueryRequest,
    StoreRequest,
    StoreResponse,
    StoreStatsRequest,
    StoreStatsResponse,
)
from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cacheserver.client import RemoteSummaryCache, ShardLink, ShardUnavailable
from repro.cacheserver.server import ShardServer
from repro.cacheserver.store import WireSummaryStore
from repro.clients import SafeCastClient

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _example_programs():
    """Every PIR program shipped in ``examples/`` (same collection rule
    as tests/test_parallel_engine.py)."""
    programs = {}
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            spec = importlib.util.spec_from_file_location(
                f"_cacheserver_example_{path.stem}", path
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            for name, value in vars(module).items():
                if name.isupper() and isinstance(value, str) and "class " in value:
                    programs[f"{path.stem}:{name}"] = value
    finally:
        sys.path.remove(str(EXAMPLES_DIR))
    return programs


EXAMPLE_PROGRAMS = _example_programs()

SRC = """
class Thing { }
class Other { }
class Helper {
  static method make() { t = new Thing; u = t; return u; }
}
class Main {
  static method main() {
    a = Helper::make();
    b = a;
    o = new Other;
  }
}
"""


def canonical(result):
    return (
        result.complete,
        frozenset((str(obj.object_id), ctx.to_tuple()) for obj, ctx in result.pairs),
    )


def all_locals(pag):
    """Every queryable (method, var) pair of a PAG, deterministically."""
    queries = []
    for qname in sorted(pag.methods()):
        for node in pag.nodes_of_method(qname):
            if node.is_local_var:
                queries.append((qname, node.name))
    return sorted(queries)


@pytest.fixture
def cluster():
    """Two in-process shard servers; stopped (hard) on teardown."""
    servers = [ShardServer(i, 2).start() for i in range(2)]
    yield servers
    for server in servers:
        server.stop()


def remote_policy(servers, **cache_kwargs):
    return EnginePolicy(
        cache=CachePolicy(
            remote=tuple(s.address for s in servers), remote_timeout=2.0,
            **cache_kwargs,
        ),
        parallelism=1,
    )


# ----------------------------------------------------------------------
# the wire store (server side)
# ----------------------------------------------------------------------
def wire_entry(method="A.m", name="x", steps=5, objects=1):
    return {
        "node": {"kind": "local", "method": method, "name": name},
        "stack": [],
        "state": 1,
        "objects": [
            {"kind": "object", "id": f"o{i}@{method}", "class": "Thing",
             "method": method}
            for i in range(objects)
        ],
        "boundaries": [],
        "steps": steps,
    }


def wire_key(entry):
    return {"node": entry["node"], "stack": entry["stack"], "state": entry["state"]}


class TestWireSummaryStore:
    def test_miss_store_hit_and_accounting(self):
        store = WireSummaryStore()
        entry = wire_entry()
        assert store.lookup(wire_key(entry)) is None
        assert store.store(entry) is True
        assert store.store(entry) is False  # resident: recency only
        assert store.lookup(wire_key(entry)) == entry
        snap = store.stats_snapshot()
        assert (snap.hits, snap.misses, snap.entries, snap.facts) == (1, 1, 1, 1)

    def test_invalidate_method_is_exact(self):
        store = WireSummaryStore()
        for i in range(3):
            store.store(wire_entry(name=f"v{i}"))
        store.store(wire_entry(method="B.n"))
        assert store.invalidate_method("A.m") == 3
        assert store.invalidate_method("A.m") == 0
        assert len(store) == 1
        assert store.lookup(wire_key(wire_entry())) is None

    def test_lru_capacity(self):
        store = WireSummaryStore(max_entries=2)
        for i in range(3):
            store.store(wire_entry(name=f"v{i}"))
        assert len(store) == 2
        assert store.evictions == 1
        assert store.lookup(wire_key(wire_entry(name="v0"))) is None
        assert store.lookup(wire_key(wire_entry(name="v2"))) is not None

    def test_cost_eviction_prefers_cheap_victims(self):
        store = WireSummaryStore(max_entries=2, eviction="cost")
        store.store(wire_entry(name="pricey", steps=1000))
        store.store(wire_entry(name="cheap", steps=1))
        store.store(wire_entry(name="new", steps=10))
        assert store.lookup(wire_key(wire_entry(name="pricey"))) is not None
        assert store.lookup(wire_key(wire_entry(name="cheap"))) is None

    def test_differing_payload_replaces_stale_resident_entry(self):
        """The self-heal path: a shard that missed an invalidation must
        accept an edited client's fresher publish for the same key."""
        store = WireSummaryStore()
        stale = wire_entry(objects=2, steps=5)
        fresh = wire_entry(objects=1, steps=9)
        assert store.store(stale) is True
        assert store.store(fresh) is True  # replaced, not ignored
        assert store.lookup(wire_key(fresh)) == fresh
        assert store.total_facts() == 1
        assert store.invalidate_method("A.m") == 1

    def test_steps_only_difference_is_not_an_edit(self):
        """`steps` is cost metadata, not payload: a steps=0 republish
        (legacy snapshot replay) must neither replace the entry nor
        collapse its cost-eviction priority — and a better estimate is
        adopted."""
        store = WireSummaryStore(max_entries=8, eviction="cost")
        computed = wire_entry(steps=50)
        assert store.store(computed) is True
        legacy = wire_entry(steps=0)
        assert store.store(legacy) is False  # same payload: no edit
        assert store.lookup(wire_key(computed))["steps"] == 50
        better = wire_entry(steps=80)
        assert store.store(better) is False
        assert store.lookup(wire_key(computed))["steps"] == 80

    def test_cost_eviction_without_ceiling_is_refused(self):
        with pytest.raises(ValueError, match="inert"):
            WireSummaryStore(eviction="cost")


# ----------------------------------------------------------------------
# the shard server's dispatch (transport-independent)
# ----------------------------------------------------------------------
class TestShardServerDispatch:
    def make_server(self, shard=0, shards=1):
        server = ShardServer(shard, shards)
        server.stop()  # dispatch only; free the port immediately
        return server

    def exchange(self, server, request):
        return decode_response(server.handle_line(encode(request)))

    def test_store_lookup_invalidate_stats_cycle(self):
        server = self.make_server()
        entry = wire_entry()
        stored = self.exchange(server, StoreRequest(entry=entry))
        assert isinstance(stored, StoreResponse) and stored.stored
        found = self.exchange(server, LookupRequest(key=wire_key(entry)))
        assert isinstance(found, LookupResponse)
        assert found.found and found.entry == entry
        from repro.api.protocol import InvalidateRequest

        dropped = self.exchange(server, InvalidateRequest(method="A.m"))
        assert isinstance(dropped, InvalidateResponse) and dropped.dropped == 1
        missing = self.exchange(server, LookupRequest(key=wire_key(entry)))
        assert not missing.found
        stats = self.exchange(server, StoreStatsRequest())
        assert isinstance(stats, StoreStatsResponse)
        assert (stats.shard, stats.shards) == (0, 1)
        assert stats.stats.entries == 0 and stats.stats.invalidated == 1

    def test_wrong_shard_is_refused_loudly(self):
        from repro.analysis.summaries import shard_for_method

        owner = shard_for_method("A.m", 2)
        server = self.make_server(shard=1 - owner, shards=2)
        response = self.exchange(server, StoreRequest(entry=wire_entry()))
        assert isinstance(response, ErrorResponse)
        assert response.code == "wrong-shard"

    def test_malformed_payloads_become_typed_errors(self):
        server = self.make_server()
        for line in (
            "not json",
            '{"kind":"store","entry":{"nope":1},"protocol_version":"1.1"}',
            '{"kind":"lookup","key":[],"protocol_version":"1.1"}',
            '{"kind":"store","entry":null,"protocol_version":"1.1"}',
        ):
            response = decode_response(server.handle_line(line))
            assert isinstance(response, ErrorResponse)

    def test_engine_vocabulary_is_refused(self):
        server = self.make_server()
        response = self.exchange(
            server, QueryRequest(method="Main.main", var="a")
        )
        assert isinstance(response, ErrorResponse)
        assert response.code == "invalid-request"
        assert "store-level" in response.message


# ----------------------------------------------------------------------
# the client stub + engine: identity under every service condition
# ----------------------------------------------------------------------
class TestRemoteEngineIdentity:
    def test_example_programs_identical_and_second_client_warm(self):
        # One cluster *per program*: the service contract is one program
        # per cluster — summaries are keyed nominally, so two different
        # programs sharing shard servers would poison each other (their
        # `Main.main` keys collide).  tests below reuse a cluster only
        # within one program.
        for label, source in EXAMPLE_PROGRAMS.items():
            servers = [ShardServer(i, 2).start() for i in range(2)]
            self._check_one_program(label, source, servers)
            for server in servers:
                server.stop()

    def _check_one_program(self, label, source, cluster):
        plain = PointsToEngine(
            build_pag(parse_program(source)), EnginePolicy(parallelism=1)
        )
        first = PointsToEngine(
            build_pag(parse_program(source)), remote_policy(cluster)
        )
        second = PointsToEngine(
            build_pag(parse_program(source)), remote_policy(cluster)
        )
        queries = all_locals(plain.pag)
        baseline = plain.query_batch(queries)
        cold = first.query_batch(queries)
        warm = second.query_batch(queries)
        for b, c, w in zip(baseline, cold, warm):
            assert canonical(c) == canonical(b), label
            assert canonical(w) == canonical(b), label
        # The second client answered some probes from the service and
        # therefore did strictly less traversal work.
        if baseline.stats.steps:
            assert warm.stats.steps <= cold.stats.steps
        remote = second.stats().remote
        assert remote is not None and remote.remote_errors == 0

    def test_figure4_workload_with_service_killed_mid_batch(self, cluster):
        instance = load_benchmark("soot-c", scale=0.3)
        client = SafeCastClient(instance.pag)
        queries = client.queries()
        half = len(queries) // 2

        plain = PointsToEngine(instance.pag, bench_engine_policy())
        _pv, plain_batch1 = client.run_engine(
            plain, queries[:half], dedupe=False, reorder=False
        )
        _pv, plain_batch2 = client.run_engine(
            plain, queries[half:], dedupe=False, reorder=False
        )

        remote_cache = CachePolicy(
            remote=tuple(s.address for s in cluster), remote_timeout=0.5
        )
        engine = PointsToEngine(
            instance.pag, bench_engine_policy(cache=remote_cache)
        )
        _v1, batch1 = client.run_engine(
            engine, queries[:half], dedupe=False, reorder=False
        )
        # Kill the whole service between the halves: every later remote
        # op fails and falls back to local compute.
        for server in cluster:
            server.stop()
        _v2, batch2 = client.run_engine(
            engine, queries[half:], dedupe=False, reorder=False
        )
        for mine, theirs in zip(batch1.results, plain_batch1.results):
            assert canonical(mine) == canonical(theirs)
        for mine, theirs in zip(batch2.results, plain_batch2.results):
            assert canonical(mine) == canonical(theirs)
        remote = engine.stats().remote
        assert remote.remote_errors > 0  # the kill was actually felt

    def test_service_down_from_the_start(self):
        pag = build_pag(parse_program(SRC))
        # Nothing listens on these ports (port 1 is root-only, port 9 discard).
        policy = EnginePolicy(
            cache=CachePolicy(
                remote=("127.0.0.1:1", "127.0.0.1:9"), remote_timeout=0.2
            ),
            parallelism=1,
        )
        engine = PointsToEngine(pag, policy)
        plain = PointsToEngine(
            build_pag(parse_program(SRC)), EnginePolicy(parallelism=1)
        )
        queries = all_locals(plain.pag)
        down = engine.query_batch(queries)
        baseline = plain.query_batch(queries)
        for mine, theirs in zip(down, baseline):
            assert canonical(mine) == canonical(theirs)
        remote = engine.stats().remote
        assert remote.remote_hits == 0
        assert remote.remote_errors > 0

    def test_backoff_bounds_failed_remote_traffic(self):
        link = ShardLink("127.0.0.1:9", timeout=0.2, retry_interval=60.0)
        with pytest.raises(ShardUnavailable):
            link.request("{}")
        # Within the backoff window the link fails fast, without a
        # second connection attempt (which would pay the timeout again).
        with pytest.raises(ShardUnavailable, match="backing off"):
            link.request("{}")

    def test_invalidation_propagates_between_in_process_clients(self, cluster):
        source = SRC
        engine_a = PointsToEngine(
            build_pag(parse_program(source)), remote_policy(cluster)
        )
        engine_b = PointsToEngine(
            build_pag(parse_program(source)), remote_policy(cluster)
        )
        # A computes and publishes; B (fresh local tier) is served by the
        # shard server.
        engine_a.query_name("Helper.make", "u")
        assert engine_b.query_name("Helper.make", "u")
        assert engine_b.stats().remote.remote_hits > 0
        # A edits Helper.make -> invalidates through the store -> the
        # owning shard drops.  A fresh client (no stale local tier) must
        # observe the drop: its lookups miss remotely.
        dropped = engine_a.invalidate_method("Helper.make")
        assert dropped > 0
        assert engine_a.stats().remote.invalidations > 0
        engine_c = PointsToEngine(
            build_pag(parse_program(source)), remote_policy(cluster)
        )
        engine_c.query_name("Helper.make", "u")
        remote_c = engine_c.stats().remote
        assert remote_c.remote_misses > 0

    def test_save_cache_snapshots_the_local_tier(self, cluster, tmp_path):
        """A remote-backed engine's snapshot is its process-local view
        (the local tier); the servers' contents belong to the service."""
        from repro.api.snapshot import load_snapshot

        engine = PointsToEngine(
            build_pag(parse_program(SRC)), remote_policy(cluster, max_entries=32)
        )
        engine.query_batch(all_locals(engine.pag))
        path = tmp_path / "local-tier.json"
        snapshot = engine.save_cache(path)
        assert len(snapshot.entries) == len(engine.cache.local_tier)
        reloaded = load_snapshot(path)
        assert reloaded.stats.max_entries == 32

    def test_warm_start_snapshot_seeds_the_service(self, cluster, tmp_path):
        """EnginePolicy(warm_start=...) over a remote store replays the
        snapshot through store() — write-through — so one snapshot file
        can warm the whole service."""
        pag = build_pag(parse_program(SRC))
        donor = PointsToEngine(pag, EnginePolicy(parallelism=1))
        donor.query_batch(all_locals(pag))
        path = tmp_path / "seed.json"
        donor.save_cache(path)

        seeder = PointsToEngine(
            build_pag(parse_program(SRC)),
            EnginePolicy(
                cache=CachePolicy(
                    remote=tuple(s.address for s in cluster), remote_timeout=2.0
                ),
                parallelism=1,
                warm_start=str(path),
            ),
        )
        assert seeder.warm_loaded > 0
        served = sum(len(s.store) for s in cluster)
        assert served == seeder.warm_loaded
        # A fresh client now answers from the service without computing:
        # pipelined by default, the batch prefetch fills its tier (a
        # non-pipelined client would score the same answers as per-probe
        # remote hits).
        reader = PointsToEngine(
            build_pag(parse_program(SRC)), remote_policy(cluster)
        )
        reader.query_batch(all_locals(reader.pag))
        reader_remote = reader.stats().remote
        assert reader_remote.prefetched + reader_remote.remote_hits > 0
        assert reader.stats().cache.hits > 0


# ----------------------------------------------------------------------
# engine integration details
# ----------------------------------------------------------------------
class TestEngineWiring:
    def test_cache_policy_normalises_and_validates(self):
        policy = CachePolicy(remote=["h:1", "h:2"])
        assert policy.remote == ("h:1", "h:2")
        with pytest.raises(ValueError):
            CachePolicy(remote=())
        with pytest.raises(ValueError):
            CachePolicy(eviction="fifo")

    def test_make_store_wraps_remote_around_local_policy(self):
        policy = CachePolicy(remote=("127.0.0.1:1",), max_entries=8)
        store = policy.make_store()
        assert isinstance(store, RemoteSummaryCache)
        assert store.local_tier.max_entries == 8
        assert store.eviction == "lru"
        cost = CachePolicy(remote=("127.0.0.1:1",), max_entries=8, eviction="cost")
        assert cost.make_store().eviction == "cost"

    def test_parallel_engine_gets_concurrency_safe_remote_store(self):
        policy = EnginePolicy(
            cache=CachePolicy(remote=("127.0.0.1:1",)), parallelism=4
        )
        store = policy.make_store()
        assert isinstance(store, RemoteSummaryCache)
        assert store.concurrent_safe  # sharded local tier under the stub

    def test_parallel_remote_engine_matches_sequential(self, cluster):
        instance = load_benchmark("soot-c", scale=0.3)
        client = SafeCastClient(instance.pag)
        sequential = PointsToEngine(instance.pag, bench_engine_policy())
        _sv, sbatch = client.run_engine(sequential, dedupe=False, reorder=False)
        parallel = PointsToEngine(
            instance.pag,
            EnginePolicy(
                max_field_depth=16,
                cache=CachePolicy(
                    remote=tuple(s.address for s in cluster), remote_timeout=2.0
                ),
                parallelism=4,
            ),
        )
        _pv, pbatch = client.run_engine(parallel, dedupe=False, reorder=False)
        assert pbatch.stats.parallelism == 4
        for mine, theirs in zip(pbatch.results, sbatch.results):
            assert canonical(mine) == canonical(theirs)

    def test_edit_session_invalidates_through_the_service(self, cluster):
        from repro.ir.parser import parse_program as parse

        program = parse(SRC)
        engine = PointsToEngine.for_program(
            program,
            remote_policy(cluster),
        )
        engine.query_name("Helper.make", "u")
        engine.query_name("Main.main", "b")  # a summary that survives the edit
        served_before = sum(len(s.store) for s in cluster)
        assert served_before > 0

        def new_body(m):
            m.alloc("t", "Other").ret("t")

        engine.edit_session().replace_body("Helper.make", new_body)
        # The owning shard no longer serves Helper.make summaries.
        owners = [s for s in cluster if s.store.invalidated > 0]
        assert owners, "no shard observed the invalidation"
        # Migration re-anchors surviving summaries *locally only* — the
        # servers already hold them, so the freshly spawned store (its
        # counters restart per program version) made zero publishes.
        assert len(engine.cache.local_tier) > 0  # something did migrate
        assert engine.cache.remote_stats().stores == 0
        # Post-edit answers are correct (fresh computation, new class).
        result = engine.query_name("Helper.make", "t")
        assert {obj.class_name for obj, _ in result.pairs} == {"Other"}


# ----------------------------------------------------------------------
# the wire service surface: provenance counters + store-level ops
# ----------------------------------------------------------------------
class TestServiceSurface:
    def test_stats_response_carries_cache_provenance(self, cluster, tmp_path):
        import json

        from repro.api.service import PointsToService

        # Warm-start a remote-backed engine from a snapshot, then serve
        # traffic: a repro-serve client must be able to observe where
        # its answers came from.
        pag = build_pag(parse_program(SRC))
        donor = PointsToEngine(pag, EnginePolicy(parallelism=1))
        donor.query_batch(all_locals(pag))
        path = tmp_path / "warm.json"
        donor.save_cache(path)

        engine = PointsToEngine(
            build_pag(parse_program(SRC)),
            EnginePolicy(
                cache=CachePolicy(
                    remote=tuple(s.address for s in cluster), remote_timeout=2.0
                ),
                parallelism=1,
                warm_start=str(path),
            ),
        )
        engine.query_name("Main.main", "b")
        service = PointsToService(engine)
        line = service.handle_line('{"kind":"stats","protocol_version":"1.0"}')
        payload = json.loads(line)
        assert payload["kind"] == "stats-result"
        assert payload["warm_loaded"] == engine.warm_loaded > 0
        assert payload["warm_skipped"] == 0
        remote = payload["remote"]
        assert remote["shards"] == 2
        assert remote["stores"] == engine.warm_loaded  # write-through seed
        # Decodes on the client side of the wire, too.
        from repro.api.protocol import StatsResponse

        decoded = decode_response(line)
        assert isinstance(decoded, StatsResponse)
        assert decoded.remote.stores == engine.warm_loaded

    def test_plain_engine_stats_have_no_remote_section(self):
        import json

        from repro.api.service import PointsToService

        engine = PointsToEngine(
            build_pag(parse_program(SRC)), EnginePolicy(parallelism=1)
        )
        service = PointsToService(engine)
        payload = json.loads(
            service.handle_line('{"kind":"stats","protocol_version":"1.1"}')
        )
        assert payload["remote"] is None
        assert payload["warm_loaded"] == 0

    def test_service_answers_store_level_ops_on_its_own_store(self):
        from repro.api.service import PointsToService

        engine = PointsToEngine(
            build_pag(parse_program(SRC)), EnginePolicy(parallelism=1)
        )
        engine.query_name("Helper.make", "u")
        service = PointsToService(engine)
        stats = decode_response(
            service.handle_line(encode(StoreStatsRequest()))
        )
        assert isinstance(stats, StoreStatsResponse)
        assert (stats.shard, stats.shards) == (0, 1)
        assert stats.stats.entries == len(engine.cache)

        # Round-trip one resident entry through lookup, then push it
        # back through store (already resident -> stored=False).
        from repro.api.snapshot import entry_to_wire

        (node, stack, state), summary = next(engine.cache.entries())
        entry = entry_to_wire(node, stack, state, summary)
        key = {"node": entry["node"], "stack": entry["stack"],
               "state": entry["state"]}
        found = decode_response(service.handle_line(encode(LookupRequest(key=key))))
        assert isinstance(found, LookupResponse) and found.found
        assert found.entry == entry
        stored = decode_response(
            service.handle_line(encode(StoreRequest(entry=entry)))
        )
        assert isinstance(stored, StoreResponse) and not stored.stored

        # An entry of a different program version is refused quietly.
        foreign = wire_entry(method="Ghost.m")
        refused = decode_response(
            service.handle_line(encode(StoreRequest(entry=foreign)))
        )
        assert isinstance(refused, StoreResponse) and not refused.stored

    def test_cacheless_analysis_refuses_store_ops_with_typed_error(self):
        from repro.api.service import PointsToService

        engine = PointsToEngine(
            build_pag(parse_program(SRC)),
            EnginePolicy(analysis="CIPTA", parallelism=1),
        )
        service = PointsToService(engine)
        response = decode_response(
            service.handle_line(encode(StoreStatsRequest()))
        )
        assert isinstance(response, ErrorResponse)
        assert response.code == "no-store"


# ----------------------------------------------------------------------
# the repro-cached client REPL (scripted exchanges)
# ----------------------------------------------------------------------
class TestReplMode:
    def test_scripted_exchange_routes_and_reports(self, cluster):
        import io

        from repro.cacheserver.cli import _connect_repl

        entry = wire_entry()
        lines = [
            encode(StoreRequest(entry=entry)),
            encode(LookupRequest(key=wire_key(entry))),
            encode(StoreStatsRequest()),
            "garbage",
        ]
        args = SimpleNamespace(
            connect=",".join(s.address for s in cluster), timeout=2.0
        )
        out = io.StringIO()
        code = _connect_repl(args, input_stream=io.StringIO("\n".join(lines)),
                             output_stream=out)
        assert code == 0
        responses = [decode_response(line) for line in out.getvalue().splitlines()]
        assert isinstance(responses[0], StoreResponse) and responses[0].stored
        assert isinstance(responses[1], LookupResponse) and responses[1].found
        # store-stats fans out: one response per shard, then the error.
        stats = [r for r in responses if isinstance(r, StoreStatsResponse)]
        assert [s.shard for s in stats] == [0, 1]
        assert sum(s.stats.entries for s in stats) == 1
        assert isinstance(responses[-1], ErrorResponse)


# ----------------------------------------------------------------------
# protocol 1.2: batched ops, pipelining, and the round-trip counter
# ----------------------------------------------------------------------
class TestBatchedOpsDispatch:
    def make_server(self, shard=0, shards=1):
        server = ShardServer(shard, shards)
        server.stop()  # dispatch only; free the port immediately
        return server

    def exchange(self, server, request):
        return decode_response(server.handle_line(encode(request)))

    def test_batch_store_lookup_invalidate_cycle(self):
        from repro.api.protocol import (
            BatchInvalidateRequest,
            BatchInvalidateResponse,
            BatchLookupRequest,
            BatchLookupResponse,
            BatchStoreRequest,
            BatchStoreResponse,
        )

        server = self.make_server()
        entries = [wire_entry(name=f"v{i}") for i in range(3)]
        stored = self.exchange(server, BatchStoreRequest(entries=tuple(entries)))
        assert isinstance(stored, BatchStoreResponse)
        assert stored.stored == (True, True, True)
        # Re-store: all resident and equal -> recency only.
        stored = self.exchange(server, BatchStoreRequest(entries=tuple(entries)))
        assert stored.stored == (False, False, False)
        keys = tuple(wire_key(e) for e in entries) + (
            wire_key(wire_entry(name="missing")),
        )
        found = self.exchange(server, BatchLookupRequest(keys=keys))
        assert isinstance(found, BatchLookupResponse)
        assert list(found.entries[:3]) == entries
        assert found.entries[3] is None
        dropped = self.exchange(
            server, BatchInvalidateRequest(methods=("A.m", "B.n"))
        )
        assert isinstance(dropped, BatchInvalidateResponse)
        assert dropped.dropped == (3, 0)

    def test_fetch_methods_all_and_filtered(self):
        from repro.api.protocol import MethodEntriesRequest, MethodEntriesResponse

        server = self.make_server()
        a = wire_entry(name="x")
        b = wire_entry(method="B.n", name="y")
        for entry in (a, b):
            self.exchange(server, StoreRequest(entry=entry))
        everything = self.exchange(server, MethodEntriesRequest())
        assert isinstance(everything, MethodEntriesResponse)
        assert list(everything.entries) == [a, b]  # coldest-first
        only_b = self.exchange(server, MethodEntriesRequest(methods=("B.n",)))
        assert list(only_b.entries) == [b]

    def test_batched_ownership_is_checked_per_element(self):
        from repro.analysis.summaries import shard_for_method
        from repro.api.protocol import BatchStoreRequest

        owner = shard_for_method("A.m", 2)
        server = self.make_server(shard=1 - owner, shards=2)
        response = self.exchange(
            server, BatchStoreRequest(entries=(wire_entry(),))
        )
        assert isinstance(response, ErrorResponse)
        assert response.code == "wrong-shard"
        assert len(server.store) == 0  # nothing partially applied

    def test_request_many_pipelines_one_flight(self, cluster):
        link = ShardLink(cluster[0].address, timeout=2.0)
        try:
            entry = wire_entry(method=self._owned_method(cluster, 0))
            lines = [
                encode(StoreRequest(entry=entry)),
                encode(LookupRequest(key=wire_key(entry))),
            ]
            responses = [decode_response(r) for r in link.request_many(lines)]
            assert isinstance(responses[0], StoreResponse)
            assert isinstance(responses[1], LookupResponse)
            assert responses[1].found
        finally:
            link.close()

    @staticmethod
    def _owned_method(servers, shard):
        from repro.analysis.summaries import shard_for_method

        index = 0
        while True:
            method = f"M{index}.m"
            if shard_for_method(method, len(servers)) == shard:
                return method
            index += 1


class TestPipelinedRemoteBatches:
    """The acceptance property: a warm pipelined batch costs
    O(shards) wire round trips — observable through the new
    ``remote.round_trips`` counter — with answers element-wise
    identical to local and to the non-pipelined path."""

    def _engine(self, servers, pipeline):
        from repro.bench.runner import BENCH_FIELD_DEPTH_LIMIT

        policy = EnginePolicy(
            max_field_depth=BENCH_FIELD_DEPTH_LIMIT,
            parallelism=1,
            cache=CachePolicy(
                remote=tuple(s.address for s in servers),
                remote_timeout=2.0,
                remote_pipeline=pipeline,
            ),
        )
        return policy

    def test_round_trips_counter_counts_exchanges(self, cluster):
        from repro.bench.suite import load_benchmark
        from repro.clients import SafeCastClient

        instance = load_benchmark("jython", scale=0.4)
        client = SafeCastClient(instance.pag)
        engine = PointsToEngine(instance.pag, self._engine(cluster, False))
        client.run_engine(engine, dedupe=False, reorder=False)
        stats = engine.stats().remote
        # Unpipelined: every remote lookup and every write-through store
        # is its own exchange.
        expected = (
            stats.remote_hits
            + stats.remote_misses
            + stats.stores
            + stats.invalidations
        )
        assert stats.round_trips == expected
        assert stats.round_trips > len(cluster)

    def test_warm_pipelined_batch_is_o_shards_round_trips(self, cluster):
        from repro.bench.suite import load_benchmark
        from repro.clients import SafeCastClient

        instance = load_benchmark("jython", scale=0.4)
        client = SafeCastClient(instance.pag)

        local = PointsToEngine(
            instance.pag,
            EnginePolicy(max_field_depth=16, parallelism=1),
        )
        _v, local_batch = client.run_engine(local, dedupe=False, reorder=False)
        digest = [canonical(r) for r in local_batch.results]

        # Cold pipelined publisher: prefetch finds nothing, the flush
        # publishes every computed summary in one batch-store per shard.
        cold = PointsToEngine(instance.pag, self._engine(cluster, True))
        _v, cold_batch = client.run_engine(cold, dedupe=False, reorder=False)
        cold_stats = cold.stats().remote
        assert [canonical(r) for r in cold_batch.results] == digest
        assert cold_stats.stores > 0
        assert cold_stats.remote_errors == 0

        # Warm pipelined reader: one fetch-methods round trip per shard
        # warms the tier; every probe then hits locally.
        warm = PointsToEngine(instance.pag, self._engine(cluster, True))
        _v, warm_batch = client.run_engine(warm, dedupe=False, reorder=False)
        warm_stats = warm.stats().remote
        assert [canonical(r) for r in warm_batch.results] == digest
        assert warm_stats.prefetched > 0
        assert warm_stats.remote_errors == 0
        # THE acceptance bound: <= (#shards x constant), not one round
        # trip per method lookup.  The constant covers prefetch + flush.
        assert warm_stats.round_trips <= 4 * len(cluster)
        # And strictly better than the per-lookup regime: the warm
        # unpipelined client pays one exchange per distinct key.
        plain = PointsToEngine(instance.pag, self._engine(cluster, False))
        _v, plain_batch = client.run_engine(plain, dedupe=False, reorder=False)
        plain_stats = plain.stats().remote
        assert [canonical(r) for r in plain_batch.results] == digest
        assert warm_stats.round_trips < plain_stats.round_trips

    def test_invalidate_purges_buffered_writes(self, cluster):
        """An edit mid-batch must not let the end-of-batch flush
        republish the edited method's pre-edit summaries."""
        from repro.analysis.summaries import SummaryCache
        from repro.analysis.ppta import PptaResult
        from repro.cfl.rsm import S1
        from repro.cfl.stacks import EMPTY_STACK
        from repro.pag.graph import PAG

        pag = PAG()
        node = pag.local_var("A.m", "x")
        cache = RemoteSummaryCache(
            tuple(s.address for s in cluster),
            local=SummaryCache(),
            timeout=2.0,
            pipeline=True,
        )
        try:
            cache.bind_pag(pag)
            cache.begin_batch()
            cache.store(node, EMPTY_STACK, S1, PptaResult((), ()))
            dropped = cache.invalidate_method("A.m")
            assert dropped == 1  # the local tier entry
            cache.end_batch()
            stats = cache.remote_stats()
            assert stats.stores == 0  # buffered publish was purged
            assert len(cluster[0].store) == 0 and len(cluster[1].store) == 0
        finally:
            cache.close()


# ----------------------------------------------------------------------
# protocol 1.4: per-method consistency epochs + program fingerprints
# ----------------------------------------------------------------------
class TestEpochConsistency:
    def test_stale_write_through_is_refused(self):
        from repro.cacheserver.store import StaleEpochRejection

        store = WireSummaryStore()
        entry = wire_entry()
        assert store.store(entry, epoch=0) is True
        store.invalidate_method("A.m", epoch=1)
        # A client that never applied the edit publishes at epoch 0:
        # refused — a pre-edit memo can never overwrite a post-edit one.
        with pytest.raises(StaleEpochRejection) as excinfo:
            store.store(entry, epoch=0)
        assert excinfo.value.method == "A.m"
        assert (excinfo.value.sent, excinfo.value.current) == (0, 1)
        assert store.stale_rejections == 1
        # Its lookups are answered with a miss, never an old payload.
        assert store.lookup(wire_key(entry), epoch=0) is None
        # The edited client (epoch 1) proceeds normally.
        assert store.store(entry, epoch=1) is True
        assert store.lookup(wire_key(entry), epoch=1) == entry

    def test_ahead_client_makes_the_server_adopt(self):
        """A shard that missed an invalidation (restarted blank and got
        re-seeded old state, or was down during the edit) self-heals on
        first contact with an ahead client: the method's residue drops
        and the newer epoch is adopted."""
        store = WireSummaryStore()
        stale = wire_entry(objects=2)
        store.store(stale, epoch=0)
        fresh = wire_entry(objects=1)
        assert store.store(fresh, epoch=3) is True
        assert store.method_epoch("A.m") == 3
        assert store.lookup(wire_key(fresh), epoch=3) == fresh
        # ...and the epoch-0 world is now refused outright.
        assert store.lookup(wire_key(stale), epoch=0) is None

    def test_same_epoch_fingerprint_arbitration(self):
        from repro.cacheserver.store import StaleEpochRejection

        store = WireSummaryStore()
        assert store.store(wire_entry(), epoch=0, fingerprint=111) is True
        # Same epoch, different program: two clients disagree about the
        # code — the first presenter pinned the fingerprint, the other
        # is refused (it must re-invalidate to roll its edit forward).
        with pytest.raises(StaleEpochRejection):
            store.store(wire_entry(objects=2), epoch=0, fingerprint=222)
        assert store.lookup(wire_key(wire_entry()), epoch=0, fingerprint=222) is None
        # An invalidate clears the pin: the next presenter pins anew.
        store.invalidate_method("A.m", epoch=1)
        assert store.store(wire_entry(objects=2), epoch=1, fingerprint=222) is True

    def test_dispatch_returns_typed_stale_epoch(self, cluster):
        from repro.analysis.summaries import shard_for_method
        from repro.api.protocol import (
            BatchStoreRequest,
            BatchStoreResponse,
            InvalidateRequest,
            StaleEpochResponse,
        )

        owner = cluster[shard_for_method("A.m", 2)]
        ack = decode_response(
            owner.handle_line(encode(InvalidateRequest(method="A.m", epoch=1)))
        )
        assert isinstance(ack, InvalidateResponse)
        refusal = decode_response(
            owner.handle_line(encode(StoreRequest(entry=wire_entry(), epoch=0)))
        )
        assert isinstance(refusal, StaleEpochResponse)
        assert refusal.method == "A.m"
        assert (refusal.sent, refusal.current) == (0, 1)
        # Batched stores refuse stale *elements*, not the whole line.
        batch = decode_response(
            owner.handle_line(
                encode(
                    BatchStoreRequest(
                        entries=(wire_entry(name="a"), wire_entry(name="b")),
                        epochs=(1, 0),
                    )
                )
            )
        )
        assert isinstance(batch, BatchStoreResponse)
        assert batch.stale == (False, True)
        assert batch.stored[1] is False

    def test_pipeline_defaults_on_with_remote(self):
        assert CachePolicy(remote=("h:1",)).effective_pipeline is True
        assert CachePolicy(
            remote=("h:1",), remote_pipeline=False
        ).effective_pipeline is False
        assert CachePolicy().effective_pipeline is False
        store = CachePolicy(remote=("127.0.0.1:1",)).make_store()
        assert store.pipeline is True

    def test_lagging_client_cannot_resurrect_pre_edit_memos(self, cluster):
        """The adversarial mixed-version schedule: A publishes, A edits
        (invalidates); C — a client that never applied the edit — joins
        at the pre-edit epoch.  C's recomputed write-throughs for the
        edited method must be refused (``epoch_rejections``), and C's
        answers stay element-wise identical to a plain local engine."""
        from repro.analysis.summaries import shard_for_method

        engine_a = PointsToEngine(
            build_pag(parse_program(SRC)), remote_policy(cluster)
        )
        engine_a.query_batch(all_locals(engine_a.pag))
        assert engine_a.invalidate_method("Helper.make") > 0

        engine_c = PointsToEngine(
            build_pag(parse_program(SRC)), remote_policy(cluster)
        )
        plain = PointsToEngine(
            build_pag(parse_program(SRC)), EnginePolicy(parallelism=1)
        )
        queries = all_locals(plain.pag)
        got = engine_c.query_batch(queries)
        want = plain.query_batch(queries)
        for mine, theirs in zip(got, want):
            assert canonical(mine) == canonical(theirs)
        remote_c = engine_c.stats().remote
        assert remote_c.epoch_rejections > 0
        # The refusals worked: the owning shard still serves no
        # Helper.make summaries at the post-edit epoch.
        owner = cluster[shard_for_method("Helper.make", 2)]
        entries, _epochs = owner.store.entries_with_epochs()
        assert all(
            entry["node"].get("method") != "Helper.make" for entry in entries
        )
        assert owner.store.stale_rejections > 0


# ----------------------------------------------------------------------
# the asyncio serving tier
# ----------------------------------------------------------------------
class TestAsyncServingTier:
    def test_async_shard_serves_and_multiplexes(self):
        import json as json_mod
        import socket as socket_mod

        from repro.cacheserver.aserver import AsyncShardServer

        server = AsyncShardServer(0, 1).start()
        try:
            # The classic untagged exchange, through the standard link.
            link = ShardLink(server.address, timeout=2.0)
            response = decode_response(
                link.request(encode(StoreRequest(entry=wire_entry())))
            )
            assert isinstance(response, StoreResponse) and response.stored
            link.close()
            # Multiplexing: many tagged requests in flight on one raw
            # socket; each response carries its request's id back.
            sock = socket_mod.create_connection(
                (server.host, server.port), timeout=5.0
            )
            reader = sock.makefile("r", encoding="utf-8")
            payload = ""
            for rid in ("a", "b", "c"):
                tagged = json_mod.loads(
                    encode(LookupRequest(key=wire_key(wire_entry())))
                )
                tagged["id"] = rid
                payload += json_mod.dumps(tagged) + "\n"
            sock.sendall(payload.encode("utf-8"))
            seen = {}
            for _ in range(3):
                decoded = json_mod.loads(reader.readline())
                seen[decoded.pop("id")] = decoded["kind"]
            assert set(seen) == {"a", "b", "c"}
            assert set(seen.values()) == {"lookup-result"}
            reader.close()
            sock.close()
        finally:
            server.stop()
        # Graceful stop released the port: nothing serves there now.
        with pytest.raises(OSError):
            socket_mod.create_connection((server.host, server.port), timeout=0.5)

    def test_bad_request_id_is_a_typed_error(self):
        from repro.cacheserver.aserver import AsyncShardServer

        server = AsyncShardServer(0, 1).start()
        try:
            link = ShardLink(server.address, timeout=2.0)
            response = decode_response(
                link.request('{"kind": "store-stats", "id": [1, 2]}')
            )
            assert isinstance(response, ErrorResponse)
            assert response.code == "invalid-request"
            link.close()
        finally:
            server.stop()

    def test_reconnect_reseeds_a_restarted_blank_server(self):
        """Kill the (async) server, restart it blank on the same port:
        the client's next exchange reconnects and replays its tier
        snapshot in the same flight — the blank server is re-warmed."""
        from repro.cacheserver.aserver import AsyncShardServer

        server = AsyncShardServer(0, 1).start()
        engine = PointsToEngine(
            build_pag(parse_program(SRC)), remote_policy([server])
        )
        engine.query_batch(all_locals(engine.pag))
        served = len(server.store)
        assert served > 0
        port = server.port
        server.stop()

        replacement = AsyncShardServer(0, 1, port=port).start()
        try:
            assert len(replacement.store) == 0
            link = engine.cache._links[0]
            # The old socket died with the old server: the first op
            # fails (and falls open), arming the backoff — clear it so
            # the next op reconnects immediately.
            with pytest.raises(ShardUnavailable):
                link.request(encode(StoreStatsRequest()))
            link.breaker.reset()
            response = decode_response(link.request(encode(StoreStatsRequest())))
            assert isinstance(response, StoreStatsResponse)
            assert response.stats.entries == served
            remote = engine.cache.remote_stats()
            assert remote.reconnects == 1
            assert remote.seeded_entries == served
        finally:
            replacement.stop()
