"""The shared cache service, multi-process: the deployment the paper's
economics scale to.

Real shard-server *processes* (spawned via ``python -m repro.cacheserver
--serve-shard``, exactly what ``repro-cached`` launches) serve real
client *processes* (``python -m repro.cacheserver.workload``) over TCP.
Pinned here:

* answers are element-wise identical across process boundaries — every
  client process, warm or cold, reproduces the single-process engine's
  canonical results on the Figure-4 workload;
* a warm second client (fresh process, empty local tier, warm service)
  completes in **< 75 %** of the cold client's traversal steps — the
  acceptance bar of ``benchmarks/BENCH_shared.json``;
* invalidation propagates: an edit applied in one client process drops
  the owning shard server's entries, and a later client process
  observes the drop (remote misses where a pristine service gave hits)
  *before* its next lookup is served stale;
* killing the server processes mid-workload degrades to local compute
  with identical answers;
* the cluster never leaks: stopping it leaves no live child processes.

These tests cost a few subprocess spawns each; the in-process twin
(``tests/test_cacheserver.py``) covers the fine-grained semantics.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro import CachePolicy, PointsToEngine
from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.cacheserver.server import CacheCluster
from repro.cacheserver.workload import canonical_results
from repro.clients import SafeCastClient

SRC_DIR = pathlib.Path(repro.__file__).resolve().parent.parent

BENCHMARK = "soot-c"
SCALE = "0.3"
CLIENT = "SafeCast"


@pytest.fixture
def proc_env(monkeypatch):
    """Make `python -m repro...` resolvable in every child process."""
    existing = os.environ.get("PYTHONPATH", "")
    merged = str(SRC_DIR) + (os.pathsep + existing if existing else "")
    monkeypatch.setenv("PYTHONPATH", merged)
    return dict(os.environ, PYTHONPATH=merged)


@pytest.fixture
def cluster(proc_env):
    with CacheCluster.spawn(shards=2) as cluster:
        assert all(cluster.alive())
        yield cluster
    assert not any(cluster.alive()), "cluster.stop() left live shard processes"


def run_client_process(env, cluster=None, results=None, invalidate=None,
                       pipeline=None):
    cmd = [
        sys.executable, "-m", "repro.cacheserver.workload",
        "--benchmark", BENCHMARK, "--scale", SCALE, "--client", CLIENT,
    ]
    if cluster is not None:
        cmd += ["--remote", ",".join(cluster.addresses)]
    if results is not None:
        cmd += ["--results", str(results)]
    if invalidate is not None:
        cmd += ["--invalidate", invalidate]
    if pipeline is True:
        cmd += ["--pipeline"]
    elif pipeline is False:
        cmd += ["--no-pipeline"]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, timeout=300
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def baseline_canonical():
    """The single-process engine's answers for the same workload."""
    instance = load_benchmark(BENCHMARK, scale=float(SCALE))
    client = SafeCastClient(instance.pag)
    engine = PointsToEngine(instance.pag, bench_engine_policy())
    _verdicts, batch = client.run_engine(engine, dedupe=False, reorder=False)
    return canonical_results(batch.results), batch.stats.steps, engine


def cached_method_of(engine):
    """Some method that actually holds cached summaries (to invalidate)."""
    for (node, _stack, _state), _summary in engine.cache.entries():
        if node.method is not None:
            return node.method
    raise AssertionError("workload cached nothing?")


class TestMultiProcessDeployment:
    def test_two_clients_identical_answers_and_warm_ratio(
        self, cluster, proc_env, tmp_path
    ):
        base, base_steps, _engine = baseline_canonical()

        cold = run_client_process(
            proc_env, cluster, results=tmp_path / "cold.json"
        )
        warm = run_client_process(
            proc_env, cluster, results=tmp_path / "warm.json"
        )

        # Element-wise identity across all three processes.
        cold_results = json.loads((tmp_path / "cold.json").read_text())
        warm_results = json.loads((tmp_path / "warm.json").read_text())
        assert cold_results == base
        assert warm_results == base

        # The cold client computed everything itself (and published via
        # the default pipelined batch-store flush); the warm client was
        # served by the shard processes — pipelined by default, its
        # batch prefetch fills the tier in O(shards) round trips.
        assert cold["steps"][0] == base_steps
        assert cold["remote"]["remote_hits"] == 0
        assert cold["remote"]["stores"] > 0
        assert warm["remote"]["prefetched"] > 0
        assert warm["remote"]["remote_misses"] == 0
        assert warm["remote"]["remote_errors"] == 0
        # O(shards): one prefetch exchange per shard plus one flush
        # flight per shard with writes — not one trip per lookup.
        assert warm["remote"]["round_trips"] <= 2 * len(cluster.addresses)

        # The acceptance bar: warm second client < 75% of cold steps.
        assert warm["steps"][0] < 0.75 * cold["steps"][0]

    def test_invalidation_propagates_across_processes(
        self, cluster, proc_env, tmp_path
    ):
        base, _steps, engine = baseline_canonical()
        victim = cached_method_of(engine)

        # Per-probe visibility semantics are what this test pins, so
        # every client here runs with immediate write-through
        # (--no-pipeline); the pipelined twin of the edit window lives
        # in the restart/self-heal test below.
        # A populates; B confirms a pristine warm service (no misses).
        run_client_process(proc_env, cluster, pipeline=False)
        warm = run_client_process(proc_env, cluster, pipeline=False)
        assert warm["remote"]["remote_misses"] == 0
        warm_hits = warm["remote"]["remote_hits"]

        # An "edit" in one client process: run, then invalidate the
        # victim method through the store (what an engine edit does).
        editor = run_client_process(
            proc_env, cluster, invalidate=victim, pipeline=False
        )
        assert editor["remote"]["invalidations"] == 1
        assert editor["remote"]["invalidation_errors"] == 0

        # A later client process observes the drop before its next
        # lookup is served: the victim's entries now miss remotely --
        # and the answers are still exactly the baseline's.  The
        # observer never applied the edit, so it is *behind* the
        # victim's epoch: its recomputed write-throughs for the victim
        # are refused by the epoch guard instead of resurrecting
        # possibly-pre-edit memos on the shard.
        observer = run_client_process(
            proc_env, cluster, results=tmp_path / "observer.json",
            pipeline=False,
        )
        assert observer["remote"]["remote_misses"] > 0
        assert observer["remote"]["remote_hits"] < warm_hits
        assert observer["remote"]["epoch_rejections"] > 0
        assert json.loads((tmp_path / "observer.json").read_text()) == base

    def test_shard_restart_self_heals_with_identical_answers(
        self, cluster, proc_env, tmp_path
    ):
        """Kill every shard mid-deployment and restart it *blank* on
        the same port: the surviving client's links reconnect-and-seed
        (replaying their tier snapshots), so a fresh client is served
        warm again — with answers element-wise identical throughout."""
        from repro.api.codec import decode_response, encode
        from repro.api.protocol import StoreStatsRequest
        from repro.cacheserver.client import ShardUnavailable

        base, base_steps, _engine = baseline_canonical()
        instance = load_benchmark(BENCHMARK, scale=float(SCALE))
        client = SafeCastClient(instance.pag)
        # Generous timeout: the reconnect flight replays the whole tier
        # snapshot, and each chunk's response read gets one timeout
        # window — a loaded CI box must not turn seeding into a flake.
        # (The dead-socket failure below is a connection reset, not a
        # timeout, so it stays fast regardless.)
        engine = PointsToEngine(
            instance.pag,
            bench_engine_policy(
                cache=CachePolicy(remote=cluster.addresses, remote_timeout=10.0)
            ),
        )
        _v, first = client.run_engine(engine, dedupe=False, reorder=False)
        assert canonical_results(first.results) == base

        for index in range(len(cluster.addresses)):
            cluster.restart_shard(index)
        assert all(cluster.alive())

        # The links' sockets died with the old processes: the first op
        # on each link fails (and falls open, like any outage), arming
        # the retry backoff — clear it so the very next op reconnects
        # now instead of after the interval.
        links = engine.cache._links
        for link in links:
            with pytest.raises(ShardUnavailable):
                link.request(encode(StoreStatsRequest()))
            link.breaker.reset()

        # The next exchange per link reconnects, and the reconnect
        # replays the tier's seed snapshot in the same flight — the
        # blank shards are re-warmed, not served into the ground.
        seeded_totals = 0
        for link in links:
            response = decode_response(link.request(encode(StoreStatsRequest())))
            seeded_totals += response.stats.entries
        assert seeded_totals > 0
        remote = engine.cache.remote_stats()
        assert remote.reconnects == len(links)
        assert remote.seeded_entries > 0
        assert remote.seeded_entries == seeded_totals

        # A fresh client process is served by the re-seeded service:
        # the warm-client steps bar holds again, answers identical.
        healed = run_client_process(
            proc_env, cluster, results=tmp_path / "healed.json"
        )
        assert json.loads((tmp_path / "healed.json").read_text()) == base
        assert healed["remote"]["prefetched"] > 0
        assert healed["remote"]["remote_errors"] == 0
        assert healed["steps"][0] < 0.75 * base_steps

    def test_mid_workload_kill_falls_back_with_identical_answers(
        self, cluster, proc_env
    ):
        instance = load_benchmark(BENCHMARK, scale=float(SCALE))
        client = SafeCastClient(instance.pag)
        queries = client.queries()
        half = len(queries) // 2

        plain = PointsToEngine(instance.pag, bench_engine_policy())
        _v, plain1 = client.run_engine(plain, queries[:half], dedupe=False,
                                       reorder=False)
        _v, plain2 = client.run_engine(plain, queries[half:], dedupe=False,
                                       reorder=False)

        engine = PointsToEngine(
            instance.pag,
            bench_engine_policy(
                cache=CachePolicy(remote=cluster.addresses, remote_timeout=0.5)
            ),
        )
        _v, mine1 = client.run_engine(engine, queries[:half], dedupe=False,
                                      reorder=False)
        cluster.kill()  # SIGKILL: no goodbye, sockets just die
        assert not any(cluster.alive())
        _v, mine2 = client.run_engine(engine, queries[half:], dedupe=False,
                                      reorder=False)

        assert canonical_results(mine1.results) == canonical_results(
            plain1.results
        )
        assert canonical_results(mine2.results) == canonical_results(
            plain2.results
        )
        assert engine.stats().remote.remote_errors > 0
