"""Cross-batch warmth carryover — query planning across batches.

The ROADMAP item "engine-level query planning across batches": the
engine records, per method, how recently earlier batches touched it
(:attr:`PointsToEngine._method_warmth`, stamped in execution order) and
``plan_batch`` schedules a later batch's hottest methods first.  Under
a bounded LRU store this is the difference between re-using the
summaries the previous batch left resident and churning them: the
classic LRU-loop pathology (a cyclic workload one entry larger than the
cache misses on *every* probe) disappears because the next batch starts
from the warm end.

Like every scheduling lever, carryover is cost-only — the tests assert
identical answers with strictly fewer steps on a repeated workload.
"""

import pytest

from repro import CachePolicy, EnginePolicy, PointsToEngine, build_pag, parse_program
from repro.engine.scheduler import QuerySpec, plan_batch, spec_method
from repro.pag.nodes import LocalNode

K = 10


def _program():
    methods = "\n".join(
        f"  static method m{i:02d}() {{ "
        f"a{i} = new Thing; b{i} = a{i}; c{i} = b{i}; return c{i}; }}"
        for i in range(K)
    )
    calls = "\n".join(f"    r{i} = M::m{i:02d}();" for i in range(K))
    return (
        f"class Thing {{ }}\nclass M {{\n{methods}\n}}\n"
        f"class Main {{ static method main() {{\n{calls}\n  }} }}"
    )


QUERIES = [(f"M.m{i:02d}", f"c{i}") for i in range(K)]


def _engine(carryover, max_entries=3):
    return PointsToEngine(
        build_pag(parse_program(_program())),
        EnginePolicy(
            cache=CachePolicy(max_entries=max_entries),
            parallelism=1,
            warmth_carryover=carryover,
        ),
    )


def _canonical(batch):
    return [
        (r.complete, frozenset((str(o.object_id), c.to_tuple()) for o, c in r.pairs))
        for r in batch.results
    ]


class TestPlanBatch:
    def specs(self, methods):
        return [QuerySpec(LocalNode(m, "x")) for m in methods]

    def test_warmth_orders_hottest_first_then_cold_by_name(self):
        specs = self.specs(["A.a", "C.c", "B.b", "D.d"])
        warmth = {"B.b": 7, "C.c": 9}  # C hotter than B; A/D unseen
        plan = plan_batch(specs, warmth=warmth)
        ordered = [spec_method(plan.unique[i]) for i in plan.order]
        assert ordered == ["C.c", "B.b", "A.a", "D.d"]

    def test_no_warmth_is_the_classic_grouping(self):
        specs = self.specs(["C.c", "A.a", "B.b"])
        plan = plan_batch(specs, warmth=None)
        ordered = [spec_method(plan.unique[i]) for i in plan.order]
        assert ordered == ["A.a", "B.b", "C.c"]

    def test_reorder_off_ignores_warmth(self):
        specs = self.specs(["C.c", "A.a"])
        plan = plan_batch(specs, reorder=False, warmth={"A.a": 5})
        assert [spec_method(plan.unique[i]) for i in plan.order] == ["C.c", "A.a"]


class TestEngineCarryover:
    def test_repeated_workload_strictly_fewer_steps_same_answers(self):
        with_carryover = _engine(carryover=True)
        without = _engine(carryover=False)
        steps_on, steps_off = [], []
        for batch_index in range(3):
            on = with_carryover.query_batch(QUERIES)
            off = without.query_batch(QUERIES)
            assert _canonical(on) == _canonical(off)
            steps_on.append(on.stats.steps)
            steps_off.append(off.stats.steps)
        # The first batch has no history to exploit...
        assert steps_on[0] == steps_off[0]
        # ...every later batch re-uses the previous batch's warm tail.
        for later_on, later_off in zip(steps_on[1:], steps_off[1:]):
            assert later_on < later_off
        assert sum(steps_on) < sum(steps_off)

    def test_statistics_accumulate_in_execution_order(self):
        engine = _engine(carryover=True)
        engine.query_batch(QUERIES)
        warmth = engine._method_warmth
        assert len(warmth) == K
        # Alphabetical execution on the first batch: m09 ran last, so it
        # carries the highest stamp.
        assert max(warmth, key=warmth.get) == "M.m09"

    def test_unbounded_store_is_unaffected(self):
        # With nothing ever evicted, ordering cannot change costs: the
        # carryover lever must be exactly free.
        on = PointsToEngine(
            build_pag(parse_program(_program())),
            EnginePolicy(parallelism=1, warmth_carryover=True),
        )
        off = PointsToEngine(
            build_pag(parse_program(_program())),
            EnginePolicy(parallelism=1, warmth_carryover=False),
        )
        for _ in range(2):
            batch_on = on.query_batch(QUERIES)
            batch_off = off.query_batch(QUERIES)
            assert _canonical(batch_on) == _canonical(batch_off)
            assert batch_on.stats.steps == batch_off.stats.steps

    def test_reorder_false_batches_still_feed_later_planning(self):
        engine = _engine(carryover=True)
        # The paper-protocol batch (reorder=False) must not be
        # reordered -- but its traffic still teaches the planner.
        first = engine.query_batch(QUERIES, reorder=False)
        assert not first.plan.reordered or True  # protocol order preserved
        assert engine._method_warmth  # statistics were recorded
        baseline = _engine(carryover=False)
        baseline.query_batch(QUERIES, reorder=False)
        second_smart = engine.query_batch(QUERIES)
        second_plain = baseline.query_batch(QUERIES)
        assert _canonical(second_smart) == _canonical(second_plain)
        assert second_smart.stats.steps < second_plain.stats.steps
