"""Smoke tests: every shipped example runs clean and says what it should."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"


def example_env():
    """The test process's environment with ``src/`` on PYTHONPATH, so the
    example subprocesses can import ``repro`` from a clean checkout."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) if not existing else str(SRC_DIR) + os.pathsep + existing
    )
    return env


def run_example(name, *args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES_DIR,
        env=example_env(),
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "pointsTo(d) = ['Dog']" in out
    assert "kennels conflated" in out
    assert "violation" in out


def test_motivating_example():
    out = run_example("motivating_example.py")
    assert "['Integer']" in out
    assert "['String']" in out
    assert "Table 1's reuse" in out


def test_motivating_example_dot():
    out = run_example("motivating_example.py", "--dot")
    assert "digraph figure2" in out


def test_table1_trace():
    out = run_example("table1_trace.py")
    assert "pointsTo(s1)" in out
    assert "summary-miss" in out
    assert "reuse" in out


def test_ide_session():
    out = run_example("ide_session.py")
    assert "violation" in out  # the Square edit flips the verdict
    assert "after revert" in out
    assert "safe" in out


def test_parallel_batch():
    out = run_example("parallel_batch.py")
    assert "identical answers: yes" in out
    assert "shard stats" in out
    assert "reconciled" in out


def test_client_comparison():
    out = run_example("client_comparison.py", "luindex")
    assert "SafeCast" in out
    assert "DYNSUM" in out
    assert "STASUM" in out


def test_client_comparison_rejects_unknown():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "client_comparison.py"), "quake3"],
        capture_output=True,
        text=True,
        timeout=60,
        env=example_env(),
    )
    assert result.returncode != 0
