"""Smoke tests: every shipped example runs clean and says what it should."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=EXAMPLES_DIR,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "pointsTo(d) = ['Dog']" in out
    assert "kennels conflated" in out
    assert "violation" in out


def test_motivating_example():
    out = run_example("motivating_example.py")
    assert "['Integer']" in out
    assert "['String']" in out
    assert "Table 1's reuse" in out


def test_motivating_example_dot():
    out = run_example("motivating_example.py", "--dot")
    assert "digraph figure2" in out


def test_table1_trace():
    out = run_example("table1_trace.py")
    assert "pointsTo(s1)" in out
    assert "summary-miss" in out
    assert "reuse" in out


def test_ide_session():
    out = run_example("ide_session.py")
    assert "violation" in out  # the Square edit flips the verdict
    assert "after revert" in out
    assert "safe" in out


def test_client_comparison():
    out = run_example("client_comparison.py", "luindex")
    assert "SafeCast" in out
    assert "DYNSUM" in out
    assert "STASUM" in out


def test_client_comparison_rejects_unknown():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "client_comparison.py"), "quake3"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
