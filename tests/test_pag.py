"""Tests for the PAG data structure and its builder."""

import pytest

from repro import build_pag, parse_program
from repro.pag.edges import ASSIGN, ASSIGN_GLOBAL, ENTRY, EXIT, LOAD, NEW, STORE
from repro.pag.graph import PAG
from repro.util.errors import IRError

from tests.conftest import FIGURE2_SOURCE, RECURSION_SOURCE, make_pag


class TestNodeInterning:
    def test_local_vars_interned(self):
        pag = PAG()
        a1 = pag.local_var("C.m", "x")
        a2 = pag.local_var("C.m", "x")
        assert a1 is a2

    def test_distinct_methods_distinct_nodes(self):
        pag = PAG()
        assert pag.local_var("C.m", "x") is not pag.local_var("C.n", "x")

    def test_globals_interned(self):
        pag = PAG()
        assert pag.global_var("C", "g") is pag.global_var("C", "g")

    def test_objects_interned(self):
        pag = PAG()
        o1 = pag.object_node("o1", "C", "C.m")
        assert pag.object_node("o1") is o1

    def test_unknown_object_lookup_fails(self):
        with pytest.raises(IRError):
            PAG().object_node("nope")

    def test_find_local_requires_existing(self):
        with pytest.raises(IRError):
            PAG().find_local("C.m", "ghost")

    def test_method_nodes_tracked(self):
        pag = PAG()
        v = pag.local_var("C.m", "x")
        o = pag.object_node("o1", "C", "C.m")
        assert set(pag.nodes_of_method("C.m")) == {v, o}


class TestEdgeStorage:
    def test_edges_deduplicated(self):
        pag = PAG()
        a, b = pag.local_var("C.m", "a"), pag.local_var("C.m", "b")
        pag.add_assign(a, b)
        pag.add_assign(a, b)
        assert pag.edge_counts()[ASSIGN] == 1
        assert len(pag.assign_sources(b)) == 1

    def test_new_edge_unique_target(self):
        pag = PAG()
        o = pag.object_node("o1", "C", "C.m")
        a, b = pag.local_var("C.m", "a"), pag.local_var("C.m", "b")
        pag.add_new(o, a)
        with pytest.raises(IRError):
            pag.add_new(o, b)

    def test_load_indexed_by_field(self):
        pag = PAG()
        base, t1 = pag.local_var("C.m", "b"), pag.local_var("C.m", "t")
        pag.add_load(base, "f", t1)
        assert pag.loads_of_field("f") == [(base, t1)]
        assert pag.loads_of_field("other") == ()

    def test_store_indexed_by_field(self):
        pag = PAG()
        value, base = pag.local_var("C.m", "v"), pag.local_var("C.m", "b")
        pag.add_store(value, "f", base)
        assert pag.stores_of_field("f") == [(value, base)]

    def test_bidirectional_adjacency(self):
        pag = PAG()
        a, p = pag.local_var("C.m", "a"), pag.local_var("D.n", "p")
        pag.add_entry(a, 5, p)
        assert pag.entry_from(a) == [(5, p)]
        assert pag.entry_into(p) == [(a, 5)]
        r, t = pag.local_var("D.n", "r"), pag.local_var("C.m", "t")
        pag.add_exit(r, 5, t)
        assert pag.exit_from(r) == [(5, t)]
        assert pag.exit_into(t) == [(r, 5)]

    def test_iter_edges_covers_all(self):
        pag = make_pag(FIGURE2_SOURCE)
        kinds = {}
        for kind, _s, _l, _t in pag.iter_edges():
            kinds[kind] = kinds.get(kind, 0) + 1
        nonzero = {k: n for k, n in pag.edge_counts().items() if n}
        assert kinds == nonzero


class TestBoundaryPredicates:
    def test_has_global_in(self):
        pag = PAG()
        a, p = pag.local_var("C.m", "a"), pag.local_var("D.n", "p")
        pag.add_entry(a, 1, p)
        assert pag.has_global_in(p)
        assert not pag.has_global_in(a)
        assert pag.has_global_out(a)
        assert not pag.has_global_out(p)

    def test_assignglobal_counts_as_global(self):
        pag = PAG()
        g = pag.global_var("C", "s")
        x = pag.local_var("C.m", "x")
        pag.add_global_assign(g, x)
        assert pag.has_global_in(x)
        assert pag.has_global_out(g)

    def test_has_local_edges(self):
        pag = PAG()
        a, b = pag.local_var("C.m", "a"), pag.local_var("C.m", "b")
        c = pag.local_var("C.m", "c")
        pag.add_assign(a, b)
        assert pag.has_local_edges(a)
        assert pag.has_local_edges(b)
        assert not pag.has_local_edges(c)


class TestBuilderIntegration:
    def test_figure2_counts(self, figure2_pag):
        counts = figure2_pag.node_counts()
        # 7 allocations: ObjectArray x2 (one per init call? no — one
        # statement, one object), Integer, String, Vector x2, Client x2.
        assert counts["O"] == 7
        assert counts["G"] == 0
        assert figure2_pag.edge_counts()[NEW] == 7

    def test_figure2_has_expected_kinds(self, figure2_pag):
        counts = figure2_pag.edge_counts()
        # Figure 2 has no plain copies — parameter passing is entry edges.
        for kind in (NEW, LOAD, STORE, ENTRY, EXIT):
            assert counts[kind] > 0, kind
        assert counts[ASSIGN] == 0
        assert counts[ASSIGN_GLOBAL] == 0

    def test_locality_between_zero_and_one(self, figure2_pag):
        assert 0.0 < figure2_pag.locality() < 1.0

    def test_unreachable_methods_excluded(self):
        pag = make_pag(
            """
            class Dead { method gone() { d = new Dead; return d; } }
            class Main { static method main() { x = new Main; } }
            """
        )
        assert "Dead.gone" not in pag.methods()
        with pytest.raises(IRError):
            pag.find_local("Dead.gone", "d")

    def test_static_fields_make_global_nodes(self):
        pag = make_pag(
            """
            class G { static field s; }
            class Main {
              static method main() {
                x = new Main;
                G::s = x;
                y = G::s;
              }
            }
            """
        )
        assert pag.node_counts()["G"] == 1
        assert pag.edge_counts()[ASSIGN_GLOBAL] == 2

    def test_recursive_sites_marked(self):
        pag = make_pag(RECURSION_SOURCE)
        recursive = [
            site
            for site in pag.program.call_sites()
            if pag.is_recursive_site(site)
        ]
        assert len(recursive) == 1

    def test_casts_become_assign_edges(self):
        pag = make_pag(
            """
            class A { }
            class Main {
              static method main() {
                a = new A;
                b = (A) a;
              }
            }
            """
        )
        b = pag.find_local("Main.main", "b")
        assert len(pag.assign_sources(b)) == 1

    def test_multiple_returns_multiple_exit_edges(self):
        pag = make_pag(
            """
            class A { }
            class B { }
            class C {
              method pick(x) {
                a = new A;
                return a;
                return x;
              }
            }
            class Main {
              static method main() {
                c = new C;
                b = new B;
                out = c.pick(b);
              }
            }
            """
        )
        out = pag.find_local("Main.main", "out")
        assert len(pag.exit_into(out)) == 2

    def test_requires_finalized_program(self):
        from repro.ir.ast import Program

        with pytest.raises(IRError):
            build_pag(Program())

    def test_repr(self, figure2_pag):
        text = repr(figure2_pag)
        assert "V=" in text and "locality" in text
