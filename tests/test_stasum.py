"""Tests for STASUM: offline summaries, delta application, thresholds."""

import pytest

from repro import DynSum, NoRefine, StaSum
from repro.analysis.stasum import (
    _POP_ANY,
    _POP_LOAD_ONLY,
    _apply_delta,
    _pop_matches,
    _stack_equals,
)
from repro.cfl.rsm import FAM_LOAD, FAM_STORE
from repro.cfl.stacks import EMPTY_STACK, Stack

from tests.conftest import (
    FIELD_ALIAS_SOURCE,
    FIGURE2_SOURCE,
    GLOBALS_SOURCE,
    STRAIGHTLINE_SOURCE,
    TWO_CALLS_SOURCE,
    make_pag,
)


def classes(result):
    return sorted(obj.class_name for obj in result.objects)


class TestDeltaPrimitives:
    def test_pop_any_matches_both_families(self):
        assert _pop_matches(("f", FAM_LOAD), (_POP_ANY, "f"))
        assert _pop_matches(("f", FAM_STORE), (_POP_ANY, "f"))

    def test_pop_load_only_rejects_store_family(self):
        assert _pop_matches(("f", FAM_LOAD), (_POP_LOAD_ONLY, "f"))
        assert not _pop_matches(("f", FAM_STORE), (_POP_LOAD_ONLY, "f"))

    def test_pop_requires_field_match(self):
        assert not _pop_matches(("g", FAM_LOAD), (_POP_ANY, "f"))

    def test_stack_equals_exact(self):
        stack = Stack.of(("g", FAM_LOAD), ("f", FAM_LOAD))  # top is f
        assert _stack_equals(stack, ((_POP_ANY, "f"), (_POP_ANY, "g")))
        assert not _stack_equals(stack, ((_POP_ANY, "f"),))
        assert not _stack_equals(EMPTY_STACK, ((_POP_ANY, "f"),))
        assert _stack_equals(EMPTY_STACK, ())

    def test_apply_delta_pop_then_push(self):
        stack = Stack.of(("g", FAM_LOAD), ("f", FAM_LOAD))
        rewritten = _apply_delta(stack, ((_POP_ANY, "f"),), (("h", FAM_STORE),))
        assert rewritten.to_tuple() == (("g", FAM_LOAD), ("h", FAM_STORE))

    def test_apply_delta_mismatch_returns_none(self):
        stack = Stack.of(("f", FAM_LOAD))
        assert _apply_delta(stack, ((_POP_ANY, "g"),), ()) is None

    def test_apply_delta_underflow_returns_none(self):
        assert _apply_delta(EMPTY_STACK, ((_POP_ANY, "f"),), ()) is None

    def test_apply_delta_pure_push(self):
        rewritten = _apply_delta(EMPTY_STACK, (), (("f", FAM_LOAD),))
        assert rewritten.peek() == ("f", FAM_LOAD)


@pytest.mark.parametrize(
    "source",
    [STRAIGHTLINE_SOURCE, FIELD_ALIAS_SOURCE, TWO_CALLS_SOURCE, GLOBALS_SOURCE],
)
def test_matches_norefine_on_simple_programs(source):
    pag = make_pag(source)
    stasum = StaSum(pag)
    norefine = NoRefine(pag)
    for node in pag.local_var_nodes():
        st = stasum.points_to(node)
        nr = norefine.points_to(node)
        # STASUM may over-approximate but never under-approximate.
        assert nr.objects <= st.objects, f"unsound at {node!r}"


def test_figure2_results(figure2_pag):
    stasum = StaSum(figure2_pag)
    assert classes(stasum.points_to_name("Main.main", "s1")) == ["Integer"]
    assert classes(stasum.points_to_name("Main.main", "s2")) == ["String"]


class TestOfflinePhase:
    def test_summaries_precomputed_eagerly(self, figure2_pag):
        stasum = StaSum(figure2_pag)
        assert stasum.summary_count > 0
        assert stasum.offline_steps > 0

    def test_summary_count_exceeds_dynsum_for_few_queries(self, figure2_pag):
        """Figure 5's premise: a handful of queries needs far fewer
        summarised points than the static all-methods table."""
        stasum = StaSum(figure2_pag)
        dynsum = DynSum(figure2_pag)
        dynsum.points_to_name("Main.main", "s1")
        assert dynsum.summary_count < stasum.summary_count

    def test_queries_report_summary_count(self, figure2_pag):
        stasum = StaSum(figure2_pag)
        result = stasum.points_to_name("Main.main", "s1")
        assert result.stats["summaries"] == stasum.summary_count

    def test_total_facts_nonzero(self, figure2_pag):
        assert StaSum(figure2_pag).total_facts() > 0


class TestThreshold:
    def test_tiny_threshold_is_conservative(self, figure2_pag):
        """With delta depth 0 every summary involving fields truncates;
        the analysis must flag affected queries incomplete rather than
        return wrong answers."""
        stasum = StaSum(figure2_pag, threshold=0)
        norefine = NoRefine(figure2_pag)
        for var in ("s1", "s2"):
            st = stasum.points_to_name("Main.main", var)
            nr = norefine.points_to_name("Main.main", var)
            if st.complete:
                assert nr.objects <= st.objects

    def test_threshold_visible_in_capabilities(self, figure2_pag):
        stasum = StaSum(figure2_pag)
        caps = stasum.capabilities()
        assert caps["full_precision"] is False
        assert caps["on_demand"] == "partly"
        assert caps["memoization"] == "static-across"


class TestSymbolicCorners:
    def test_pop_demand_recorded_for_unknown_stack(self):
        """A boundary node whose method pops from the incoming stack
        yields a summary entry with a pop demand, applied only when the
        concrete stack supplies the field."""
        pag = make_pag(
            """
            class Cell { field val; }
            class Main {
              static method main() {
                c = new Cell;
                x = new Main;
                c.val = x;
                out = c.val;
              }
            }
            """
        )
        stasum = StaSum(pag)
        result = stasum.points_to_name("Main.main", "out")
        assert sorted(o.class_name for o in result.objects) == ["Main"]

    def test_threshold_zero_truncates_field_programs(self):
        pag = make_pag(
            """
            class Cell { field val; }
            class Maker {
              static method fill(c, x) {
                c.val = x;
              }
            }
            class Main {
              static method main() {
                c = new Cell;
                x = new Main;
                Maker::fill(c, x);
                out = c.val;
              }
            }
            """
        )
        tight = StaSum(pag, threshold=0)
        generous = StaSum(pag, threshold=8)
        tight_result = tight.points_to_name("Main.main", "out")
        generous_result = generous.points_to_name("Main.main", "out")
        assert generous_result.complete
        assert sorted(o.class_name for o in generous_result.objects) == ["Main"]
        # The tight threshold either still answers (conservatively) or
        # flags incompleteness — it must never silently drop the object
        # while claiming completeness.
        if tight_result.complete:
            assert generous_result.objects <= tight_result.objects

    def test_summary_table_covers_both_directions(self, figure2_pag):
        from repro.cfl.rsm import S1, S2

        stasum = StaSum(figure2_pag)
        directions = {state for (_node, state) in stasum._table}
        assert directions == {S1, S2}

    def test_offline_cost_grows_with_threshold(self, figure2_pag):
        small = StaSum(figure2_pag, threshold=1)
        large = StaSum(figure2_pag, threshold=10)
        assert small.offline_steps <= large.offline_steps
