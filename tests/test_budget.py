"""Tests for the traversal budget."""

import pytest

from repro.cfl.budget import DEFAULT_BUDGET, UNLIMITED_BUDGET, Budget
from repro.util.errors import BudgetExceededError


class TestBudget:
    def test_default_limit_matches_paper(self):
        assert DEFAULT_BUDGET == 75_000

    def test_charge_accumulates(self):
        budget = Budget(10)
        budget.charge()
        budget.charge(3)
        assert budget.steps == 4

    def test_exhaustion_raises(self):
        budget = Budget(2)
        budget.charge()
        budget.charge()
        with pytest.raises(BudgetExceededError):
            budget.charge()

    def test_error_carries_limit(self):
        budget = Budget(1)
        budget.charge()
        with pytest.raises(BudgetExceededError) as exc:
            budget.charge()
        assert exc.value.budget == 1

    def test_exactly_at_limit_is_fine(self):
        budget = Budget(5)
        budget.charge(5)
        assert not budget.exhausted

    def test_remaining(self):
        budget = Budget(10)
        budget.charge(4)
        assert budget.remaining == 6

    def test_remaining_never_negative(self):
        budget = Budget(1)
        budget.charge()
        try:
            budget.charge()
        except BudgetExceededError:
            pass
        assert budget.remaining == 0

    def test_unlimited_never_raises(self):
        budget = Budget(UNLIMITED_BUDGET)
        budget.charge(10_000_000)
        assert not budget.exhausted
        assert budget.remaining is None

    def test_zero_limit_rejected(self):
        with pytest.raises(ValueError):
            Budget(0)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            Budget(-5)

    def test_repr(self):
        assert "unlimited" in repr(Budget(None))
        assert "10" in repr(Budget(10))
