"""Unit and property tests for the persistent Stack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cfl.stacks import EMPTY_STACK, Stack


class TestBasics:
    def test_empty_is_empty(self):
        assert EMPTY_STACK.is_empty
        assert len(EMPTY_STACK) == 0
        assert EMPTY_STACK.peek() is None

    def test_push_makes_nonempty(self):
        s = EMPTY_STACK.push("f")
        assert not s.is_empty
        assert len(s) == 1
        assert s.peek() == "f"

    def test_pop_returns_previous(self):
        s = EMPTY_STACK.push("f")
        assert s.pop() is EMPTY_STACK

    def test_pop_empty_stays_empty(self):
        # Partially balanced paths rely on underflow-pops staying empty.
        assert EMPTY_STACK.pop() is EMPTY_STACK

    def test_push_is_persistent(self):
        s1 = EMPTY_STACK.push("a")
        s2 = s1.push("b")
        assert s1.peek() == "a"
        assert s2.peek() == "b"
        assert len(s1) == 1  # s1 unchanged by pushing onto it

    def test_of_builder(self):
        s = Stack.of("a", "b", "c")
        assert s.peek() == "c"
        assert s.to_tuple() == ("a", "b", "c")

    def test_iteration_is_top_down(self):
        s = Stack.of("a", "b", "c")
        assert list(s) == ["c", "b", "a"]

    def test_repr_is_readable(self):
        assert repr(Stack.of(1, 2)) == "[1,2]"

    def test_heterogeneous_values(self):
        s = Stack.of(("f", 0), 42)
        assert s.peek() == 42
        assert s.pop().peek() == ("f", 0)


class TestEqualityAndHashing:
    def test_structural_equality(self):
        assert Stack.of("a", "b") == Stack.of("a", "b")

    def test_inequality_different_order(self):
        assert Stack.of("a", "b") != Stack.of("b", "a")

    def test_inequality_different_length(self):
        assert Stack.of("a") != Stack.of("a", "a")

    def test_empty_equals_empty(self):
        assert Stack() == EMPTY_STACK

    def test_hash_consistency(self):
        assert hash(Stack.of("x", "y")) == hash(Stack.of("x", "y"))

    def test_usable_as_dict_key(self):
        d = {Stack.of("f"): 1}
        assert d[Stack.of("f")] == 1

    def test_not_equal_to_other_types(self):
        assert Stack.of("a") != ("a",)
        assert EMPTY_STACK != []


@given(st.lists(st.text(max_size=3), max_size=8))
def test_push_pop_roundtrip(items):
    stack = EMPTY_STACK
    for item in items:
        stack = stack.push(item)
    assert stack.to_tuple() == tuple(items)
    for item in reversed(items):
        assert stack.peek() == item
        stack = stack.pop()
    assert stack.is_empty


@given(st.lists(st.integers(), max_size=8), st.lists(st.integers(), max_size=8))
def test_equality_matches_tuples(a, b):
    sa, sb = Stack.of(*a), Stack.of(*b)
    assert (sa == sb) == (tuple(a) == tuple(b))
    if sa == sb:
        assert hash(sa) == hash(sb)


@given(st.lists(st.integers(), min_size=1, max_size=8))
def test_pop_is_inverse_of_push(items):
    stack = Stack.of(*items)
    assert stack.pop().to_tuple() == tuple(items[:-1])


@given(st.lists(st.integers(), max_size=8))
def test_len_tracks_contents(items):
    assert len(Stack.of(*items)) == len(items)
