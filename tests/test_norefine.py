"""Behavioural tests for the NOREFINE analysis."""

import pytest

from repro import AnalysisConfig, NoRefine
from repro.cfl.stacks import EMPTY_STACK, Stack
from repro.util.errors import IRError

from tests.conftest import (
    FIELD_ALIAS_SOURCE,
    GLOBALS_SOURCE,
    RECURSION_SOURCE,
    STRAIGHTLINE_SOURCE,
    TWO_CALLS_SOURCE,
    make_pag,
)


def classes(result):
    return sorted(obj.class_name for obj in result.objects)


class TestLocalFlows:
    def test_direct_allocation(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        result = NoRefine(pag).points_to_name("Main.main", "a")
        assert classes(result) == ["Widget"]

    def test_copy_chain(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        result = NoRefine(pag).points_to_name("Main.main", "c")
        assert classes(result) == ["Widget"]

    def test_unassigned_is_empty(self):
        pag = make_pag(
            "class Main { static method main() { a = new Main; b = ghost; } }"
        )
        result = NoRefine(pag).points_to_name("Main.main", "b")
        assert result.objects == frozenset()
        assert result.complete

    def test_field_store_load_via_alias(self):
        pag = make_pag(FIELD_ALIAS_SOURCE)
        result = NoRefine(pag).points_to_name("Main.main", "out")
        assert classes(result) == ["Payload"]

    def test_field_sensitivity_separates_fields(self):
        pag = make_pag(
            """
            class Cell { field a; field b; }
            class X { }
            class Y { }
            class Main {
              static method main() {
                c = new Cell;
                x = new X;
                y = new Y;
                c.a = x;
                c.b = y;
                outa = c.a;
                outb = c.b;
              }
            }
            """
        )
        nr = NoRefine(pag)
        assert classes(nr.points_to_name("Main.main", "outa")) == ["X"]
        assert classes(nr.points_to_name("Main.main", "outb")) == ["Y"]

    def test_distinct_objects_not_conflated(self):
        pag = make_pag(
            """
            class Cell { field a; }
            class X { }
            class Y { }
            class Main {
              static method main() {
                c1 = new Cell;
                c2 = new Cell;
                x = new X;
                y = new Y;
                c1.a = x;
                c2.a = y;
                out = c1.a;
              }
            }
            """
        )
        # c1 and c2 are different objects: out sees only X.
        result = NoRefine(pag).points_to_name("Main.main", "out")
        assert classes(result) == ["X"]


class TestContextSensitivity:
    def test_identity_calls_kept_apart(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        nr = NoRefine(pag)
        assert classes(nr.points_to_name("Main.main", "ra")) == ["A"]
        assert classes(nr.points_to_name("Main.main", "rb")) == ["B"]

    def test_query_inside_callee_merges_callers(self):
        # Querying the formal itself (empty initial context) must see
        # both actuals: a realizable path may start mid-program.
        pag = make_pag(TWO_CALLS_SOURCE)
        result = NoRefine(pag).points_to_name("Id.identity", "x")
        assert classes(result) == ["A", "B"]

    def test_initial_context_restricts_query(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        # Find the site id of the first identity call (ra = ...).
        program = pag.program
        sites = [
            (sid, stmt)
            for sid, (_m, stmt) in program.call_sites().items()
            if stmt.target == "ra"
        ]
        (site_id, _stmt) = sites[0]
        context = EMPTY_STACK.push(site_id)
        result = NoRefine(pag).points_to(
            pag.find_local("Id.identity", "x"), context=context
        )
        assert classes(result) == ["A"]

    def test_globals_clear_context(self):
        pag = make_pag(GLOBALS_SOURCE)
        result = NoRefine(pag).points_to_name("Main.main", "x")
        assert classes(result) == ["A", "B"]

    def test_recursion_is_collapsed_and_terminates(self):
        pag = make_pag(RECURSION_SOURCE)
        result = NoRefine(pag).points_to_name("Main.main", "out")
        assert result.complete
        assert classes(result) == ["A"]


class TestBudgets:
    def test_budget_exhaustion_marks_incomplete(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        config = AnalysisConfig(budget=2)
        result = NoRefine(pag, config).points_to_name("Main.main", "ra")
        assert not result.complete

    def test_budget_charged_steps_reported(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        result = NoRefine(pag).points_to_name("Main.main", "c")
        assert result.steps > 0

    def test_budget_monotonicity(self):
        """Raising the budget can only turn unknowns into answers."""
        pag = make_pag(FIELD_ALIAS_SOURCE)
        small = NoRefine(pag, AnalysisConfig(budget=3)).points_to_name(
            "Main.main", "out"
        )
        large = NoRefine(pag, AnalysisConfig(budget=10_000)).points_to_name(
            "Main.main", "out"
        )
        assert large.complete
        assert small.objects <= large.objects

    def test_field_depth_limit_marks_incomplete(self):
        # A field-load cycle pumps the stack; the depth limit aborts.
        pag = make_pag(
            """
            class Node { field next; }
            class Main {
              static method main() {
                n = new Node;
                n.next = n;
                cur = n;
                cur = cur.next;
                out = cur.next;
              }
            }
            """
        )
        config = AnalysisConfig(budget=None, max_field_depth=4)
        result = NoRefine(pag, config).points_to_name("Main.main", "out")
        # The cycle is caught either by completing (visited set) or by
        # the depth limit; either way the query must terminate.
        assert result.steps < 10_000


class TestStatsAndErrors:
    def test_total_counters_accumulate(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        nr = NoRefine(pag)
        nr.points_to_name("Main.main", "a")
        nr.points_to_name("Main.main", "b")
        assert nr.total_queries == 2
        assert nr.total_steps > 0
        nr.reset_stats()
        assert nr.total_queries == 0

    def test_querying_object_node_rejected(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        (obj,) = [o for o in pag.object_nodes()]
        with pytest.raises(IRError):
            NoRefine(pag).points_to(obj)

    def test_capabilities_row(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        caps = NoRefine(pag).capabilities()
        assert caps["analysis"] == "NOREFINE"
        assert caps["full_precision"] is True
        assert caps["memoization"] == "none"
