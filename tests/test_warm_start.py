"""Engine persistence: save a summary store, restart warm.

The acceptance property of this layer: an engine warm-started from a
saved snapshot returns **element-wise identical** results to a cold
engine while executing **strictly fewer** traversal steps — on every
shipped example program and on the Figure-4 workload.  Summaries are
pure memos keyed by nominal node identity, so replaying them can only
remove PPTA work, never change an answer.
"""

from dataclasses import replace

import pytest

from repro import (
    CachePolicy,
    EnginePolicy,
    PointsToEngine,
    SnapshotError,
    build_pag,
    parse_program,
)
from repro.bench.runner import bench_engine_policy
from repro.bench.suite import load_benchmark
from repro.clients import ALL_CLIENTS
from repro.util.errors import IRError

from test_parallel_engine import EXAMPLE_PROGRAMS


def _query_nodes(pag):
    """A deterministic all-locals workload (covers every method)."""
    return sorted(pag.local_var_nodes(), key=repr)


def _warm_policy(base, path, **cache_kwargs):
    policy = replace(base, warm_start=str(path))
    if cache_kwargs:
        policy = replace(policy, cache=CachePolicy(**cache_kwargs))
    return policy


def _run_cold_and_warm(pag, items, tmp_path, warm_cache_kwargs=None):
    base = bench_engine_policy()
    cold = PointsToEngine(pag, base)
    cold_batch = cold.query_batch(items, dedupe=False, reorder=False)
    path = tmp_path / "summaries.json"
    snapshot = cold.save_cache(path)
    warm = PointsToEngine(
        pag, _warm_policy(base, path, **(warm_cache_kwargs or {}))
    )
    warm_batch = warm.query_batch(items, dedupe=False, reorder=False)
    return cold, cold_batch, warm, warm_batch, snapshot


@pytest.mark.parametrize("name", sorted(EXAMPLE_PROGRAMS))
def test_examples_warm_start_identical_and_cheaper(name, tmp_path):
    pag = build_pag(parse_program(EXAMPLE_PROGRAMS[name]))
    items = _query_nodes(pag)
    cold, cold_batch, warm, warm_batch, snapshot = _run_cold_and_warm(
        pag, items, tmp_path
    )
    assert len(snapshot.entries) > 0
    assert warm.warm_loaded == len(snapshot.entries)
    assert warm.warm_skipped == 0
    for cold_result, warm_result in zip(cold_batch.results, warm_batch.results):
        assert warm_result.pairs == cold_result.pairs
        assert warm_result.complete == cold_result.complete
    assert warm_batch.stats.steps < cold_batch.stats.steps


@pytest.fixture(scope="module")
def figure4_instance():
    return load_benchmark("soot-c", scale=0.5)


@pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
def test_figure4_workload_warm_start(figure4_instance, client_cls, tmp_path):
    """The paper-protocol workload: identical verdicts and answers,
    strictly fewer steps, after a save/restart cycle."""
    pag = figure4_instance.pag
    base = bench_engine_policy()
    client = client_cls(pag)

    cold = PointsToEngine(pag, base)
    cold_verdicts, cold_batch = cold.run_client(
        client, dedupe=False, reorder=False
    )
    path = tmp_path / "summaries.json"
    snapshot = cold.save_cache(path)
    assert len(snapshot.entries) == len(cold.cache)

    warm = PointsToEngine(pag, _warm_policy(base, path))
    warm_verdicts, warm_batch = warm.run_client(
        client, dedupe=False, reorder=False
    )
    assert warm.warm_loaded == len(snapshot.entries)
    assert [v.status for v in warm_verdicts] == [v.status for v in cold_verdicts]
    for cold_result, warm_result in zip(cold_batch.results, warm_batch.results):
        assert warm_result.pairs == cold_result.pairs
    assert warm_batch.stats.steps < cold_batch.stats.steps
    # Every probe the warm run makes before its first miss is a hit on a
    # replayed summary; at minimum the hit *rate* must not regress.
    assert warm_batch.stats.hit_rate >= cold_batch.stats.hit_rate


def test_warm_start_into_sharded_store(tmp_path):
    """The snapshot is store-shape-agnostic: saved from an unbounded
    cache, replayed into a sharded (or bounded) one — the policy of the
    *new* engine wins, answers never change."""
    pag = build_pag(parse_program(EXAMPLE_PROGRAMS[sorted(EXAMPLE_PROGRAMS)[0]]))
    items = _query_nodes(pag)
    cold, cold_batch, warm, warm_batch, snapshot = _run_cold_and_warm(
        pag, items, tmp_path, warm_cache_kwargs={"shards": 4}
    )
    assert warm.cache.n_shards == 4
    assert warm.warm_loaded == len(snapshot.entries)
    for cold_result, warm_result in zip(cold_batch.results, warm_batch.results):
        assert warm_result.pairs == cold_result.pairs
    assert warm_batch.stats.steps < cold_batch.stats.steps


def test_warm_start_skips_entries_of_a_different_program(tmp_path):
    """Program drift between save and restart: unresolvable entries are
    skipped (counted), never applied, and answers stay correct."""
    figure2 = build_pag(parse_program(EXAMPLE_PROGRAMS[sorted(EXAMPLE_PROGRAMS)[0]]))
    cold = PointsToEngine(figure2, bench_engine_policy())
    cold.query_batch(_query_nodes(figure2), dedupe=False, reorder=False)
    path = tmp_path / "summaries.json"
    cold.save_cache(path)

    other_pag = build_pag(
        parse_program(
            "class W { }\n"
            "class Main { static method main() { a = new W; b = a; } }"
        )
    )
    warm = PointsToEngine(
        other_pag, _warm_policy(bench_engine_policy(), path)
    )
    assert warm.warm_loaded == 0
    assert warm.warm_skipped > 0
    result = warm.query_name("Main.main", "b")
    assert [obj.class_name for obj in result.objects] == ["W"]


def test_warm_start_missing_file_is_a_typed_error():
    pag = build_pag(parse_program(EXAMPLE_PROGRAMS[sorted(EXAMPLE_PROGRAMS)[0]]))
    policy = replace(bench_engine_policy(), warm_start="/no/such/snapshot.json")
    with pytest.raises(SnapshotError):
        PointsToEngine(pag, policy)


def test_save_cache_requires_a_summary_store(tmp_path):
    pag = build_pag(parse_program(EXAMPLE_PROGRAMS[sorted(EXAMPLE_PROGRAMS)[0]]))
    engine = PointsToEngine(pag, bench_engine_policy(analysis="REFINEPTS"))
    with pytest.raises(IRError):
        engine.save_cache(tmp_path / "nope.json")


def test_program_backed_engine_survives_save_edit_warm_cycle(tmp_path):
    """Persistence composes with the IDE scenario: a program-backed
    engine saves, edits (dropping stale summaries), saves again, and a
    restart from the newer snapshot is warm for the edited program."""
    source = """
class Thing { }
class Widget { }
class Factory {
  method create() {
    t = new Thing;
    return t;
  }
}
class Main {
  static method main() {
    f = new Factory;
    x = f.create();
    y = x;
  }
}
"""
    program = parse_program(source)
    engine = PointsToEngine.for_program(program, bench_engine_policy())
    before = engine.query_name("Main.main", "y")
    assert [obj.class_name for obj in before.objects] == ["Thing"]

    session = engine.edit_session()
    session.replace_body(
        "Factory.create", lambda m: m.alloc("w", "Widget").ret("w")
    )
    after = engine.query_name("Main.main", "y")
    assert [obj.class_name for obj in after.objects] == ["Widget"]

    path = tmp_path / "edited.json"
    snapshot = engine.save_cache(path)
    assert len(snapshot.entries) > 0

    restarted = PointsToEngine.for_program(
        parse_program(source), bench_engine_policy()
    )
    # The restarted host has the *original* program: entries minted for
    # the edited Factory.create must not resolve into it blindly — the
    # object-class check keeps stale Widget memos out.
    loaded, _skipped = snapshot.load_into(
        restarted.cache, restarted.pag, strict=False
    )
    result = restarted.query_name("Main.main", "y")
    assert [obj.class_name for obj in result.objects] == ["Thing"]
