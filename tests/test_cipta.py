"""Tests for the context-insensitive demand analysis (OOPSLA'05 style)."""

import pytest

from repro import ContextInsensitivePta, DynSum, NoRefine
from repro.callgraph.andersen import AndersenAnalysis

from tests.conftest import (
    FIELD_ALIAS_SOURCE,
    FIGURE2_SOURCE,
    GLOBALS_SOURCE,
    STRAIGHTLINE_SOURCE,
    TWO_CALLS_SOURCE,
    make_pag,
)


def classes(result):
    return sorted(obj.class_name for obj in result.objects)


class TestBasics:
    def test_local_flows(self):
        pag = make_pag(STRAIGHTLINE_SOURCE)
        result = ContextInsensitivePta(pag).points_to_name("Main.main", "c")
        assert classes(result) == ["Widget"]

    def test_field_sensitivity_retained(self):
        pag = make_pag(FIELD_ALIAS_SOURCE)
        result = ContextInsensitivePta(pag).points_to_name("Main.main", "out")
        assert classes(result) == ["Payload"]

    def test_contexts_merged(self):
        pag = make_pag(TWO_CALLS_SOURCE)
        ci = ContextInsensitivePta(pag)
        assert classes(ci.points_to_name("Main.main", "ra")) == ["A", "B"]

    def test_globals(self):
        pag = make_pag(GLOBALS_SOURCE)
        result = ContextInsensitivePta(pag).points_to_name("Main.main", "x")
        assert classes(result) == ["A", "B"]


@pytest.mark.parametrize(
    "source",
    [
        STRAIGHTLINE_SOURCE,
        FIELD_ALIAS_SOURCE,
        TWO_CALLS_SOURCE,
        GLOBALS_SOURCE,
        FIGURE2_SOURCE,
    ],
)
class TestSoundnessEnvelope:
    def test_cs_subset_of_ci(self, source):
        """Context-sensitive results refine context-insensitive ones."""
        pag = make_pag(source)
        ci = ContextInsensitivePta(pag)
        cs = NoRefine(pag)
        for node in pag.local_var_nodes():
            ci_result = ci.points_to(node)
            cs_result = cs.points_to(node)
            if ci_result.complete and cs_result.complete:
                assert cs_result.objects <= ci_result.objects

    def test_ci_subset_of_andersen(self, source):
        """The demand CI analysis never exceeds the whole-program
        Andersen solution (same abstraction)."""
        from repro.ir.parser import parse_program

        pag = make_pag(source)
        andersen = AndersenAnalysis(pag.program).solve()
        ci = ContextInsensitivePta(pag)
        for node in pag.local_var_nodes():
            result = ci.points_to(node)
            if not result.complete:
                continue
            demand_ids = {obj.object_id for obj in result.objects}
            exhaustive_ids = {
                oid for oid, _cls in andersen.points_to_local(node.method, node.name)
            }
            assert demand_ids <= exhaustive_ids, f"unsound at {node!r}"


def test_ci_equals_andersen_on_figure2():
    """On the paper's example the demand-CI analysis is exactly
    Andersen (Melski-Reps interconvertibility, modulo reachability)."""
    pag = make_pag(FIGURE2_SOURCE)
    andersen = AndersenAnalysis(pag.program).solve()
    ci = ContextInsensitivePta(pag)
    for var in ("s1", "s2", "v1", "c2"):
        demand = {o.object_id for o in ci.points_to_name("Main.main", var).objects}
        exhaustive = {
            oid for oid, _c in andersen.points_to_local("Main.main", var)
        }
        assert demand == exhaustive
