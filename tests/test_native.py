"""The native traversal kernel's availability/fallback contract.

The differential battery (``tests/test_ppta_fastpath.py``) pins the
kernel's bit-parity with the reference loop; this module pins the
*plumbing* around it:

* :func:`repro.native.availability` — a ``(bool, reason)`` pair, never
  an exception, whatever the host is missing;
* ``REPRO_NATIVE=0`` and a missing C compiler both degrade the
  ``native`` impl to the pure-Python ``array`` loop silently — answers
  and step counts identical, with the reason reported through engine
  stats as ``native_unavailable``;
* the :class:`~repro.engine.policy.EnginePolicy` ``traversal_impl``
  knob and the ``REPRO_TRAVERSAL`` boot default select the impl, and
  the selection plus any native fallback reason travel over the wire
  on ``stats-result`` (protocol 1.5).
"""

import pytest

from repro.analysis import ppta
from repro.analysis.dynsum import DynSum
from repro.api.codec import encode, decode_response
from repro.api.protocol import StatsRequest
from repro.api.service import PointsToService
from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.runner import bench_analysis_config
from repro.engine.core import PointsToEngine
from repro.engine.policy import EnginePolicy
from repro.native import availability, binding
from repro.pag.builder import build_pag


@pytest.fixture
def fresh_kernel_state():
    """Recompute the cached kernel-load outcome around a test that
    changes the environment it depends on."""
    binding._reset()
    yield
    binding._reset()


def make_pag(seed=3):
    return build_pag(
        generate_program(
            GeneratorConfig(
                seed=seed, domain_classes=4, data_classes=3, layers=2
            )
        )
    )


def answers(pag, impl):
    analysis = DynSum(pag, bench_analysis_config())
    with ppta.traversal_impl(impl):
        results = [
            analysis.points_to(node) for node in pag.local_var_nodes()
        ]
    return (
        [sorted(map(repr, r.pairs)) for r in results],
        [r.steps for r in results],
    )


class TestAvailability:
    def test_contract(self):
        ok, reason = availability()
        if ok:
            assert reason is None
        else:
            assert isinstance(reason, str) and reason

    def test_repro_native_0_disables(self, monkeypatch, fresh_kernel_state):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        binding._reset()
        ok, reason = availability()
        assert not ok
        assert reason == "disabled (REPRO_NATIVE=0)"

    def test_no_compiler_is_a_reason_not_an_error(
        self, monkeypatch, tmp_path, fresh_kernel_state
    ):
        # An unresolvable $CC means "no compiler", and an empty cache
        # dir keeps a previously compiled kernel from being reused.
        # (REPRO_NATIVE takes precedence, so clear an outer opt-out —
        # the CI no-compiler leg exports it suite-wide.)
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setenv("CC", str(tmp_path / "no-such-cc"))
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        binding._reset()
        ok, reason = availability()
        assert not ok
        assert "no C compiler" in reason


class TestFallback:
    def test_disabled_kernel_answers_identically(
        self, monkeypatch, fresh_kernel_state
    ):
        pag = make_pag()
        expected = answers(pag, "array")
        monkeypatch.setenv("REPRO_NATIVE", "0")
        binding._reset()
        assert answers(pag, "native") == expected

    def test_no_compiler_answers_identically(
        self, monkeypatch, tmp_path, fresh_kernel_state
    ):
        pag = make_pag(seed=4)
        expected = answers(pag, "array")
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        monkeypatch.setenv("CC", str(tmp_path / "no-such-cc"))
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        binding._reset()
        assert answers(pag, "native") == expected


class TestSelection:
    def test_policy_knob_pins_the_impl(self):
        pag = make_pag()
        native = PointsToEngine(pag, EnginePolicy(traversal_impl="native"))
        reference = PointsToEngine(
            pag, EnginePolicy(traversal_impl="reference")
        )
        nodes = list(pag.local_var_nodes())
        got = [sorted(map(repr, native.query(n).pairs)) for n in nodes]
        want = [sorted(map(repr, reference.query(n).pairs)) for n in nodes]
        assert got == want
        assert native.steps_total == reference.steps_total
        assert native.stats().traversal_impl == "native"
        assert reference.stats().traversal_impl == "reference"

    def test_unpinned_policy_reports_the_global_impl(self):
        engine = PointsToEngine(make_pag(), EnginePolicy())
        with ppta.traversal_impl("array"):
            assert engine.stats().traversal_impl == "array"

    def test_unknown_impl_is_rejected(self):
        with pytest.raises(ValueError, match="unknown traversal impl"):
            EnginePolicy(traversal_impl="turbo")

    def test_env_boot_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAVERSAL", "native")
        assert ppta._default_impl() == "native"
        monkeypatch.setenv("REPRO_TRAVERSAL", "turbo")
        # A stale env value must not brick the process.
        assert ppta._default_impl() == "fast"
        monkeypatch.delenv("REPRO_TRAVERSAL")
        assert ppta._default_impl() == "fast"


class TestStatsPlumbing:
    def test_native_unavailable_reason_reaches_stats(
        self, monkeypatch, fresh_kernel_state
    ):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        binding._reset()
        engine = PointsToEngine(
            make_pag(), EnginePolicy(traversal_impl="native")
        )
        stats = engine.stats()
        assert stats.traversal_impl == "native"
        assert stats.native_unavailable == "disabled (REPRO_NATIVE=0)"

    def test_non_native_engines_probe_nothing(self):
        engine = PointsToEngine(
            make_pag(), EnginePolicy(traversal_impl="array")
        )
        assert engine.stats().native_unavailable is None

    def test_stats_response_carries_the_fields(self):
        engine = PointsToEngine(
            make_pag(), EnginePolicy(traversal_impl="native")
        )
        for node in list(engine.pag.local_var_nodes())[:3]:
            engine.query(node)
        response = PointsToService(engine).handle(StatsRequest())
        decoded = decode_response(encode(response))
        assert decoded.traversal_impl == "native"
        ok, reason = availability()
        assert decoded.native_unavailable == (None if ok else reason)
