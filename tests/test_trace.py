"""Tests for the Table 1-style query tracer."""

import pytest

from repro import DynSum
from repro.analysis.trace import QueryTracer, format_trace

from tests.conftest import FIGURE2_SOURCE, make_pag


@pytest.fixture(scope="module")
def pag():
    return make_pag(FIGURE2_SOURCE)


class TestTracer:
    def test_records_visits(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum) as tracer:
            dynsum.points_to_name("Main.main", "s1")
        assert tracer.visits
        assert tracer.visits[0].node is pag.find_local("Main.main", "s1")

    def test_first_query_has_misses_second_has_hits(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum) as first:
            dynsum.points_to_name("Main.main", "s1")
        with QueryTracer(dynsum) as second:
            dynsum.points_to_name("Main.main", "s2")
        assert first.reuse_count == 0 or first.reuse_count < second.reuse_count
        assert any(s.event == "summary-miss" for s in first.steps)
        assert second.reuse_count > 0  # Table 1's "reuse" rows

    def test_observer_detached_after_block(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum):
            pass
        assert dynsum.observer is None

    def test_nesting_rejected(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum):
            with pytest.raises(RuntimeError):
                QueryTracer(dynsum).__enter__()

    def test_tracing_does_not_change_answers(self, pag):
        plain = DynSum(pag)
        traced = DynSum(pag)
        expected = plain.points_to_name("Main.main", "s1").objects
        with QueryTracer(traced):
            got = traced.points_to_name("Main.main", "s1").objects
        assert got == expected

    def test_fields_are_plain_names(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum) as tracer:
            dynsum.points_to_name("Main.main", "s1")
        for step in tracer.steps:
            assert all(isinstance(field, str) for field in step.fields())


class TestFormatting:
    def test_format_renders_table(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum) as tracer:
            dynsum.points_to_name("Main.main", "s1")
        text = format_trace(tracer.steps)
        assert "s1@Main.main" in text
        assert "S1" in text
        assert "step" in text.splitlines()[0]

    def test_format_truncates(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum) as tracer:
            dynsum.points_to_name("Main.main", "s1")
        text = format_trace(tracer.steps, max_rows=3)
        assert "more steps" in text

    def test_repr(self, pag):
        dynsum = DynSum(pag)
        with QueryTracer(dynsum) as tracer:
            dynsum.points_to_name("Main.main", "s1")
        assert "TraceStep(0" in repr(tracer.steps[0])
