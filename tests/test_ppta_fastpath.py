"""Differential battery: the optimized traversals vs the retained reference.

The hot-path overhaul rewrote the PPTA inner loop and the DYNSUM
worklist over precompiled adjacency records, interned push tokens and
int-keyed visited sets, and routed STASUM/REFINEPTS/NOREFINE over the
same records.  The pre-optimization implementation is retained
(:func:`repro.analysis.ppta.run_ppta_reference` plus DYNSUM's
``_explore_reference``), switched in with
:func:`repro.analysis.ppta.traversal_impl` — and this battery pins the
equivalence over ~50 generated programs:

* DYNSUM and STASUM run under **every** implementation (``fast``,
  ``array``, and — when the compiled kernel loads — ``native``) on
  fresh instances: query results element-wise identical, step counts
  bit-equal, and (DYNSUM) the cached summaries' object/boundary sets
  identical entry for entry;
* NOREFINE and REFINEPTS (whose record-based loops have no switch) are
  pinned by the full-precision invariant: wherever they and the
  reference DYNSUM all complete, the answers coincide.

A subprocess pair also checks that summary fact *ordering* — now sorted
on structural ``(kind, owner, name)`` node keys rather than ``repr`` —
is stable across ``PYTHONHASHSEED`` values.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.analysis import ppta
from repro.analysis.base import AnalysisConfig
from repro.analysis.dynsum import DynSum
from repro.analysis.norefine import NoRefine
from repro.analysis.refinepts import RefinePts
from repro.analysis.stasum import StaSum
from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.runner import bench_analysis_config
from repro.clients import SafeCastClient
from repro.native import availability
from repro.pag.builder import build_pag


def _battery_impls():
    """The optimized impls this host can differentially test: ``native``
    joins when the kernel loads (no compiler → it is exercised by
    :func:`test_native_rows_covered_or_skipped`'s explicit skip
    instead, and the dispatch fallback keeps it answer-identical
    anyway)."""
    impls = ["fast", "array"]
    if availability()[0]:
        impls.append("native")
    return tuple(impls)

#: 50 program shapes: a seed sweep over a small base config plus a few
#: structural variants (deeper layering, heavier library traffic, field
#: chains) mixed in round-robin.
_BASE = GeneratorConfig(
    domain_classes=4,
    data_classes=3,
    box_variants=2,
    workers_per_class=2,
    stmts_per_worker=6,
    driver_rounds=1,
    layers=2,
)
_VARIANTS = (
    _BASE,
    replace(_BASE, layers=3, stmts_per_worker=8),
    replace(_BASE, library_call_bias=2.0),
    replace(_BASE, null_density=0.8, cast_density=0.9),
    replace(_BASE, fields_per_class=5, hierarchy_depth=3),
)
CONFIGS = [
    replace(_VARIANTS[seed % len(_VARIANTS)], seed=seed) for seed in range(50)
]


def make_pag(config):
    return build_pag(generate_program(config))


def query_nodes(pag):
    """SafeCast's query stream plus a deterministic sample of locals."""
    nodes = [query.node(pag) for query in SafeCastClient(pag).queries()]
    sampled = []
    for qname in sorted(pag.methods()):
        for node in pag.nodes_of_method(qname):
            if node.is_local_var:
                sampled.append(node)
    nodes.extend(sampled[:: max(1, len(sampled) // 8)])
    return nodes


def canonical(result):
    return (
        result.complete,
        sorted(
            (str(obj.object_id), ctx.to_tuple()) for obj, ctx in result.pairs
        ),
    )


def run_all(analysis, nodes):
    return [analysis.points_to(node) for node in nodes]


def summary_facts(cache):
    """The cached summaries as comparable object/boundary sets."""
    facts = {}
    for (node, stack, state), summary in cache.entries():
        key = (repr(node), stack.to_tuple(), state)
        facts[key] = (
            frozenset(obj.object_id for obj in summary.objects),
            frozenset(
                (repr(bnode), bstack.to_tuple(), bstate)
                for bnode, bstack, bstate in summary.boundaries
            ),
            summary.steps,
        )
    return facts


@pytest.mark.parametrize("chunk", range(10))
def test_differential_battery(chunk):
    """Five programs per chunk (pytest-parallel friendly), all four
    analyses, fast vs array vs native vs reference."""
    impls = _battery_impls()
    for config in CONFIGS[chunk * 5 : chunk * 5 + 5]:
        pag = make_pag(config)
        nodes = query_nodes(pag)
        assert nodes, f"no queries generated for seed {config.seed}"
        outcomes = {}
        for impl in impls + ("reference",):
            with ppta.traversal_impl(impl):
                dynsum = DynSum(pag, bench_analysis_config())
                dyn_results = run_all(dynsum, nodes)
                stasum = StaSum(pag, bench_analysis_config())
                sta_results = run_all(stasum, nodes)
            outcomes[impl] = {
                "dyn": [canonical(r) for r in dyn_results],
                "dyn_steps": [r.steps for r in dyn_results],
                "dyn_stats": [
                    (r.stats["cache_hits"], r.stats["cache_misses"])
                    for r in dyn_results
                ],
                "dyn_complete": [r.complete for r in dyn_results],
                "facts": summary_facts(dynsum.cache),
                "sta": [canonical(r) for r in sta_results],
                "sta_steps": [r.steps for r in sta_results],
            }
        ref = outcomes["reference"]
        for impl in impls:
            got = outcomes[impl]
            label = f"seed {config.seed} [{impl}]"
            # Element-wise identical answers, steps and probe accounting.
            assert got["dyn"] == ref["dyn"], label
            assert got["dyn_steps"] == ref["dyn_steps"], label
            assert got["dyn_stats"] == ref["dyn_stats"], label
            # Entry-for-entry identical summaries (objects, boundary
            # sets, recorded build cost).
            assert got["facts"] == ref["facts"], label
            assert got["sta"] == ref["sta"], label
            assert got["sta_steps"] == ref["sta_steps"], label
        label = f"seed {config.seed}"

        # Full-precision cross-check for the record-based NOREFINE /
        # REFINEPTS loops: wherever everything completes, the answers
        # coincide with reference DYNSUM's.
        norefine = NoRefine(pag, bench_analysis_config())
        refinepts = RefinePts(pag, bench_analysis_config())
        for index, node in enumerate(nodes):
            if not ref["dyn_complete"][index]:
                continue
            nr = norefine.points_to(node)
            rp = refinepts.points_to(node)
            if nr.complete:
                assert canonical(nr) == ref["dyn"][index], (label, index)
            if rp.complete:
                assert canonical(rp) == ref["dyn"][index], (label, index)


def test_native_rows_covered_or_skipped():
    """Make the battery's native coverage visible: on hosts where the
    kernel loads this asserts the battery really swept ``native``; on
    hosts without a working compiler it SKIPS with the binding's
    reason, so a green run never silently means "native untested"."""
    ok, reason = availability()
    if not ok:
        pytest.skip(f"native kernel unavailable: {reason}")
    assert "native" in _battery_impls()


#: Adversarial program shapes for the native soak: recursion (folded
#: sites), a megamorphic call site (wide cross-edge op lists) and deep
#: field chains (long hash-consed stacks), swept across budget/k-limit
#: cutoffs — every abort path must leave answers AND step counts
#: bit-equal to the reference loop.
_SOAK_BASE = GeneratorConfig(
    domain_classes=5,
    data_classes=4,
    workers_per_class=2,
    stmts_per_worker=8,
    layers=3,
    recursion_depth=4,
    megamorphic_degree=5,
    field_chain_depth=4,
)
_SOAK_CONFIGS = (
    AnalysisConfig(budget=3),
    AnalysisConfig(budget=25, max_field_depth=2),
    AnalysisConfig(budget=120, track_heap_contexts=False),
    AnalysisConfig(budget=None, max_field_depth=1),
    AnalysisConfig(budget=None),
)


@pytest.mark.parametrize("seed", range(6))
def test_native_adversarial_soak(seed):
    """Randomized adversarial soak: native vs reference, identical
    answers and step counts across abort-heavy configurations."""
    ok, reason = availability()
    if not ok:
        pytest.skip(f"native kernel unavailable: {reason}")
    pag = make_pag(replace(_SOAK_BASE, seed=1000 + seed))
    nodes = query_nodes(pag)
    assert nodes
    for config in _SOAK_CONFIGS:
        outcomes = {}
        for impl in ("native", "reference"):
            with ppta.traversal_impl(impl):
                dynsum = DynSum(pag, config)
                results = run_all(dynsum, nodes)
            outcomes[impl] = {
                "answers": [canonical(r) for r in results],
                "steps": [r.steps for r in results],
                "stats": [
                    (r.stats["cache_hits"], r.stats["cache_misses"])
                    for r in results
                ],
                "facts": summary_facts(dynsum.cache),
            }
        assert outcomes["native"] == outcomes["reference"], (
            f"seed {1000 + seed}, config {config}"
        )
    # The rows above must have run IN the kernel, not on the silent
    # array fallback — a refused image would make this soak vacuous.
    from repro.native.session import _NativeGraph

    assert type(pag.csr()._native) is _NativeGraph


_HASHSEED_SCRIPT = r"""
import json, sys
from repro.analysis.dynsum import DynSum
from repro.analysis.stasum import StaSum
from repro.bench.generator import GeneratorConfig, generate_program
from repro.bench.runner import bench_analysis_config
from repro.pag.builder import build_pag

pag = build_pag(generate_program(GeneratorConfig(
    seed=11, domain_classes=4, data_classes=3, workers_per_class=2,
    stmts_per_worker=6, driver_rounds=1)))
dynsum = DynSum(pag, bench_analysis_config())
for qname in sorted(pag.methods()):
    for node in pag.nodes_of_method(qname):
        if node.is_local_var:
            dynsum.points_to(node)
order = []
for (node, stack, state), summary in sorted(
    dynsum.cache.entries(), key=lambda kv: (repr(kv[0][0]), kv[0][1].to_tuple(), kv[0][2])
):
    order.append([
        repr(node), list(stack.to_tuple()), state,
        [repr(b[0]) for b in summary.boundaries],
        [str(o.object_id) for o in summary.objects],
    ])
stasum = StaSum(pag, bench_analysis_config())
tables = []
for (node, state), summary in sorted(
    stasum._table.items(), key=lambda kv: (repr(kv[0][0]), kv[0][1])
):
    tables.append([repr(node), state,
                   [repr(b[2]) for b in summary.boundaries]])
json.dump({"order": order, "tables": tables}, sys.stdout, sort_keys=True)
"""


def _run_with_hashseed(seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(seed)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _HASHSEED_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_summary_ordering_stable_across_hashseeds():
    """The structural sort keys make summary fact ordering independent
    of ``PYTHONHASHSEED`` — the regression the repr-replacement
    satellite pins down."""
    assert _run_with_hashseed(0) == _run_with_hashseed(12345)
