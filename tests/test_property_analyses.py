"""Property-based cross-analysis tests over randomly generated programs.

The generators build small but structurally varied PIR programs (copies,
field traffic through shared cells, calls with mixed payloads, statics,
casts, nulls) and check the paper's core meta-claims on *every* local
variable:

1. DYNSUM == NOREFINE == fully-refined REFINEPTS (full precision);
2. every demand answer is a subset of Andersen's (soundness envelope);
3. context-sensitive ⊆ context-insensitive;
4. DYNSUM answers are independent of query order and cache state.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AnalysisConfig,
    AndersenAnalysis,
    ContextInsensitivePta,
    DynSum,
    NoRefine,
    RefinePts,
    build_pag,
)
from repro.ir.builder import ProgramBuilder

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Data classes available to generated programs.
DATA_CLASSES = ["D0", "D1", "D2"]


@st.composite
def pir_programs(draw):
    """A random but always-valid PIR program.

    The construction maintains two pools of defined locals — *data*
    variables (may only ever hold payload objects or null) and
    *container* variables (Cells/Holders) — and only stores data into
    fields.  Containers therefore never nest, field-access chains have
    depth one by construction, and every analysis terminates even with
    an unlimited budget (self-referential stores like ``c.val = c``
    would otherwise pump the field stack forever).
    """
    b = ProgramBuilder()
    for name in DATA_CLASSES:
        b.cls(name)
    cell = b.cls("Cell", fields=["val"])
    cell.method("get").load("r", "this", "val").ret("r")
    cell.method("set", params=["x"]).store("this", "val", "x")
    holder = b.cls("Holder", fields=["a", "b"], static_fields=["shared"])
    holder.method("geta").load("r", "this", "a").ret("r")
    holder.method("putb", params=["x"]).store("this", "b", "x")
    holder.method("idn", params=["x"]).ret("x")

    main = b.cls("Main").static_method("main")
    data_pool = []
    container_pool = []
    counter = [0]

    def fresh():
        counter[0] += 1
        return f"v{counter[0]}"

    def define(var):
        data_pool.append(var)
        return var

    def pick_data():
        return data_pool[draw(st.integers(0, len(data_pool) - 1))]

    def pick_container():
        return container_pool[draw(st.integers(0, len(container_pool) - 1))]

    main.alloc(define(fresh()), draw(st.sampled_from(DATA_CLASSES)))
    n_statements = draw(st.integers(2, 14))
    for _ in range(n_statements):
        pattern = draw(
            st.sampled_from(
                [
                    "alloc",
                    "copy",
                    "null",
                    "cast",
                    "cell_roundtrip",
                    "holder_fields",
                    "static_roundtrip",
                    "call_id",
                    "call_accessors",
                    "reuse_container",
                ]
            )
        )
        if pattern == "alloc":
            main.alloc(define(fresh()), draw(st.sampled_from(DATA_CLASSES)))
        elif pattern == "copy":
            main.copy(define(fresh()), pick_data())
        elif pattern == "null":
            main.null(define(fresh()))
        elif pattern == "cast":
            main.cast(define(fresh()), draw(st.sampled_from(DATA_CLASSES)), pick_data())
        elif pattern == "cell_roundtrip":
            cell_var = fresh()
            main.alloc(cell_var, "Cell")
            main.store(cell_var, "val", pick_data())
            main.load(define(fresh()), cell_var, "val")
            container_pool.append(cell_var)
        elif pattern == "holder_fields":
            holder_var = fresh()
            main.alloc(holder_var, "Holder")
            main.store(holder_var, "a", pick_data())
            main.store(holder_var, "b", pick_data())
            main.load(define(fresh()), holder_var, "a")
        elif pattern == "static_roundtrip":
            main.static_put("Holder", "shared", pick_data())
            main.static_get(define(fresh()), "Holder", "shared")
        elif pattern == "call_id":
            holder_var = fresh()
            main.alloc(holder_var, "Holder")
            main.vcall(holder_var, "idn", args=[pick_data()], target=define(fresh()))
        elif pattern == "call_accessors":
            cell_var = fresh()
            main.alloc(cell_var, "Cell")
            main.vcall(cell_var, "set", args=[pick_data()])
            main.vcall(cell_var, "get", target=define(fresh()))
            container_pool.append(cell_var)
        elif pattern == "reuse_container" and container_pool:
            # Extra traffic through an existing Cell: aliasing via
            # repeated stores/loads on the same base.
            base = pick_container()
            main.store(base, "val", pick_data())
            main.load(define(fresh()), base, "val")
    return b.build()


UNLIMITED = AnalysisConfig(budget=None)


@given(pir_programs())
@settings(**SETTINGS)
def test_precision_equality(program):
    """DYNSUM == NOREFINE == fully refined REFINEPTS, everywhere."""
    pag = build_pag(program)
    norefine = NoRefine(pag, UNLIMITED)
    dynsum = DynSum(pag, UNLIMITED)
    refinepts = RefinePts(pag, UNLIMITED)
    for node in pag.local_var_nodes():
        nr = norefine.points_to(node).objects
        ds = dynsum.points_to(node).objects
        rp = refinepts.points_to(node).objects
        assert nr == ds, f"NOREFINE vs DYNSUM at {node!r}"
        assert nr == rp, f"NOREFINE vs REFINEPTS at {node!r}"


@given(pir_programs())
@settings(**SETTINGS)
def test_soundness_envelope(program):
    """demand CS ⊆ demand CI ⊆ Andersen, per variable."""
    pag = build_pag(program)
    andersen = AndersenAnalysis(program).solve()
    cs = NoRefine(pag, UNLIMITED)
    ci = ContextInsensitivePta(pag, UNLIMITED)
    for node in pag.local_var_nodes():
        cs_ids = {o.object_id for o in cs.points_to(node).objects}
        ci_ids = {o.object_id for o in ci.points_to(node).objects}
        exhaustive = {
            oid for oid, _cls in andersen.points_to_local(node.method, node.name)
        }
        assert cs_ids <= ci_ids, f"CS > CI at {node!r}"
        assert ci_ids <= exhaustive, f"CI > Andersen at {node!r}"


@given(pir_programs(), st.randoms(use_true_random=False))
@settings(**SETTINGS)
def test_dynsum_order_independence(program, rng):
    """Shuffled query order and a warm cache never change answers."""
    pag = build_pag(program)
    nodes = pag.local_var_nodes()
    baseline = {node: NoRefine(pag, UNLIMITED).points_to(node).objects for node in nodes}
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    dynsum = DynSum(pag, UNLIMITED)
    for node in shuffled:
        assert dynsum.points_to(node).objects == baseline[node]
    # Second pass over a fully warm cache.
    for node in shuffled:
        assert dynsum.points_to(node).objects == baseline[node]


@given(pir_programs())
@settings(**SETTINGS)
def test_invalidation_preserves_answers(program):
    pag = build_pag(program)
    dynsum = DynSum(pag, UNLIMITED)
    nodes = pag.local_var_nodes()
    before = {node: dynsum.points_to(node).objects for node in nodes}
    for method in pag.methods():
        dynsum.invalidate_method(method)
    for node in nodes:
        assert dynsum.points_to(node).objects == before[node]


@given(pir_programs())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_budget_monotonicity(program):
    """A larger budget never flips a completed answer."""
    pag = build_pag(program)
    small = NoRefine(pag, AnalysisConfig(budget=30))
    large = NoRefine(pag, UNLIMITED)
    for node in pag.local_var_nodes():
        small_result = small.points_to(node)
        large_result = large.points_to(node)
        assert large_result.complete
        if small_result.complete:
            assert small_result.objects == large_result.objects
        else:
            assert small_result.objects <= large_result.objects


@given(pir_programs())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_stasum_never_unsound(program):
    """STASUM may over-approximate (threshold/turnaround) but must never
    miss an object NOREFINE finds."""
    from repro import StaSum

    pag = build_pag(program)
    stasum = StaSum(pag, UNLIMITED)
    norefine = NoRefine(pag, UNLIMITED)
    for node in pag.local_var_nodes():
        st = stasum.points_to(node)
        nr = norefine.points_to(node)
        assert nr.objects <= st.objects, f"STASUM unsound at {node!r}"


@given(pir_programs())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_refinepts_first_iteration_overapproximates(program):
    """The field-based first pass is a superset of the precise answer —
    the invariant that makes early client satisfaction sound."""
    from repro.cfl.stacks import EMPTY_STACK

    pag = build_pag(program)
    refinepts = RefinePts(pag, UNLIMITED)
    norefine = NoRefine(pag, UNLIMITED)
    for node in pag.local_var_nodes():
        pairs = set()
        refinepts._explore(
            node, EMPTY_STACK, pairs, refinepts.config.new_budget(),
            refined=set(), flds_seen=set(),
        )
        field_based = {obj for obj, _ctx in pairs}
        precise = norefine.points_to(node).objects
        assert precise <= field_based, f"iteration 1 under-approximates at {node!r}"


@given(pir_programs(), st.data())
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_incremental_edits_match_cold_start(program, data):
    """Random method-body edits through the incremental session always
    produce the same answers as a cold re-analysis of the edited
    program (modulo node identity, compared via stable object labels)."""
    from repro import IncrementalAnalysisSession

    session = IncrementalAnalysisSession(program, UNLIMITED)
    editable = [
        m.qualified_name
        for m in program.methods()
        if session.pag.call_graph.is_reachable(m.qualified_name)
        and m.qualified_name != "Main.main"
    ]
    if not editable:
        return
    # Warm the cache on every variable, then edit a random method into a
    # fresh-allocation body and re-compare everything.
    for node in session.pag.local_var_nodes():
        session.points_to(node)
    target = data.draw(st.sampled_from(sorted(editable)))

    def new_body(m):
        method = m.method
        if not method.is_static:
            pass  # instance methods keep their implicit `this`
        m.alloc("fresh_edit", "D0")
        m.ret("fresh_edit")

    session.replace_body(target, new_body)
    cold = NoRefine(build_pag(session.program), UNLIMITED)
    for node in session.pag.local_var_nodes():
        warm_ids = {o.object_id for o in session.points_to(node).objects}
        cold_node = cold.pag.find_local(node.method, node.name)
        cold_ids = {o.object_id for o in cold.points_to(cold_node).objects}
        assert warm_ids == cold_ids, f"post-edit mismatch at {node!r}"
