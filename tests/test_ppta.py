"""Unit tests for the PPTA (DSPOINTSTO) on hand-built PAGs."""

import pytest

from repro.analysis.ppta import PptaResult, run_ppta
from repro.cfl.budget import Budget
from repro.cfl.rsm import FAM_LOAD, FAM_STORE, S1, S2
from repro.cfl.stacks import EMPTY_STACK, Stack
from repro.pag.graph import PAG
from repro.util.errors import BudgetExceededError

M = "C.m"  # every node in these graphs lives in one method


def build_pag():
    return PAG()


def local(pag, name):
    return pag.local_var(M, name)


def obj(pag, oid, cls="T"):
    return pag.object_node(oid, cls, M)


class TestS1Basics:
    def test_new_with_empty_stack_emits_object(self):
        pag = build_pag()
        v = local(pag, "v")
        o = obj(pag, "o1")
        pag.add_new(o, v)
        result = run_ppta(pag, v, EMPTY_STACK, S1, Budget(None))
        assert result.objects == (o,)
        assert result.boundaries == ()

    def test_assign_chain_collapsed(self):
        pag = build_pag()
        a, b, c = (local(pag, n) for n in "abc")
        o = obj(pag, "o1")
        pag.add_new(o, a)
        pag.add_assign(a, b)
        pag.add_assign(b, c)
        result = run_ppta(pag, c, EMPTY_STACK, S1, Budget(None))
        assert result.objects == (o,)

    def test_local_store_load_roundtrip(self):
        pag = build_pag()
        base, value, out = local(pag, "base"), local(pag, "value"), local(pag, "out")
        ob = obj(pag, "ob", "Cell")
        ov = obj(pag, "ov", "Payload")
        pag.add_new(ob, base)
        pag.add_new(ov, value)
        pag.add_store(value, "f", base)
        pag.add_load(base, "f", out)
        result = run_ppta(pag, out, EMPTY_STACK, S1, Budget(None))
        assert result.objects == (ov,)

    def test_mismatched_field_yields_nothing(self):
        pag = build_pag()
        base, value, out = local(pag, "base"), local(pag, "value"), local(pag, "out")
        pag.add_new(obj(pag, "ob"), base)
        pag.add_new(obj(pag, "ov"), value)
        pag.add_store(value, "f", base)
        pag.add_load(base, "g", out)  # loads g, stored f
        result = run_ppta(pag, out, EMPTY_STACK, S1, Budget(None))
        assert result.objects == ()

    def test_two_bases_not_conflated(self):
        pag = build_pag()
        b1, b2 = local(pag, "b1"), local(pag, "b2")
        v1, v2, out = local(pag, "v1"), local(pag, "v2"), local(pag, "out")
        pag.add_new(obj(pag, "c1", "Cell"), b1)
        pag.add_new(obj(pag, "c2", "Cell"), b2)
        o1 = obj(pag, "o1", "X")
        o2 = obj(pag, "o2", "Y")
        pag.add_new(o1, v1)
        pag.add_new(o2, v2)
        pag.add_store(v1, "f", b1)
        pag.add_store(v2, "f", b2)
        pag.add_load(b1, "f", out)
        result = run_ppta(pag, out, EMPTY_STACK, S1, Budget(None))
        assert result.objects == (o1,)


class TestBoundaries:
    def test_global_in_emits_boundary(self):
        pag = build_pag()
        v, src = local(pag, "v"), local(pag, "src")
        other = pag.local_var("D.n", "w")
        pag.add_entry(other, 1, v)  # global edge into v
        pag.add_assign(src, v)
        result = run_ppta(pag, v, EMPTY_STACK, S1, Budget(None))
        assert (v, EMPTY_STACK, S1) in result.boundaries

    def test_no_global_edge_no_boundary(self):
        pag = build_pag()
        v = local(pag, "v")
        pag.add_new(obj(pag, "o1"), v)
        result = run_ppta(pag, v, EMPTY_STACK, S1, Budget(None))
        assert result.boundaries == ()

    def test_boundary_carries_accumulated_stack(self):
        pag = build_pag()
        out, base = local(pag, "out"), local(pag, "base")
        caller_var = pag.local_var("D.n", "arg")
        pag.add_load(base, "f", out)
        pag.add_entry(caller_var, 7, base)  # base is a formal
        result = run_ppta(pag, out, EMPTY_STACK, S1, Budget(None))
        expected_stack = EMPTY_STACK.push(("f", FAM_LOAD))
        assert (base, expected_stack, S1) in result.boundaries

    def test_s2_boundary_on_outgoing_global(self):
        pag = build_pag()
        v = local(pag, "v")
        callee_formal = pag.local_var("D.n", "p")
        pag.add_entry(v, 3, callee_formal)  # global edge out of v
        pag.add_assign(v, local(pag, "w"))  # ensure v has local edges
        result = run_ppta(pag, v, EMPTY_STACK, S2, Budget(None))
        assert (v, EMPTY_STACK, S2) in result.boundaries


class TestTurnaround:
    def test_alias_through_allocation(self):
        """x and y alias via o; a pending load on x resolves through the
        store on y (the new/new-bar turnaround)."""
        pag = build_pag()
        x, y, out, value = (local(pag, n) for n in ("x", "y", "out", "value"))
        o = obj(pag, "cell", "Cell")
        pag.add_new(o, x)
        pag.add_assign(x, y)  # y = x: alias
        ov = obj(pag, "pay", "P")
        pag.add_new(ov, value)
        pag.add_store(value, "f", y)
        pag.add_load(x, "f", out)
        result = run_ppta(pag, out, EMPTY_STACK, S1, Budget(None))
        assert result.objects == (ov,)

    def test_family_crossing_rejected(self):
        """Two values stored into the same field slot do NOT alias:
        the family-B push must not be closed by the store-bar rule."""
        pag = build_pag()
        base = local(pag, "base")
        v1, v2, out = local(pag, "v1"), local(pag, "v2"), local(pag, "out")
        pag.add_new(obj(pag, "cell", "Cell"), base)
        o1 = obj(pag, "o1", "X")
        o2 = obj(pag, "o2", "Y")
        pag.add_new(o1, v1)
        pag.add_new(o2, v2)
        pag.add_store(v1, "f", base)
        pag.add_store(v2, "f", base)
        # out = v1: pts(out) must be {o1}, not {o1, o2}.
        pag.add_assign(v1, out)
        result = run_ppta(pag, out, EMPTY_STACK, S1, Budget(None))
        assert result.objects == (o1,)


class TestTermination:
    def test_assign_cycle_terminates(self):
        pag = build_pag()
        a, b = local(pag, "a"), local(pag, "b")
        o = obj(pag, "o1")
        pag.add_new(o, a)
        pag.add_assign(a, b)
        pag.add_assign(b, a)
        result = run_ppta(pag, b, EMPTY_STACK, S1, Budget(None))
        assert result.objects == (o,)

    def test_budget_charged_and_raises(self):
        pag = build_pag()
        a, b = local(pag, "a"), local(pag, "b")
        pag.add_new(obj(pag, "o1"), a)
        pag.add_assign(a, b)
        with pytest.raises(BudgetExceededError):
            run_ppta(pag, b, EMPTY_STACK, S1, Budget(1))

    def test_depth_limit_raises(self):
        pag = build_pag()
        v = local(pag, "v")
        pag.add_load(v, "f", v)  # v = v.f: unbounded backward pushes
        with pytest.raises(BudgetExceededError):
            run_ppta(pag, v, EMPTY_STACK, S1, Budget(None), max_field_depth=3)

    def test_result_is_deterministic(self):
        pag = build_pag()
        a, b, c = (local(pag, n) for n in "abc")
        pag.add_new(obj(pag, "o2"), b)
        pag.add_new(obj(pag, "o1"), a)
        pag.add_assign(a, c)
        pag.add_assign(b, c)
        r1 = run_ppta(pag, c, EMPTY_STACK, S1, Budget(None))
        r2 = run_ppta(pag, c, EMPTY_STACK, S1, Budget(None))
        assert r1.objects == r2.objects
        assert r1.boundaries == r2.boundaries


class TestPptaResult:
    def test_size(self):
        result = PptaResult(("a", "b"), (("n", EMPTY_STACK, S1),))
        assert result.size == 3

    def test_repr(self):
        assert "2 object(s)" in repr(PptaResult(("a", "b"), ()))
