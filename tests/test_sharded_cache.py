"""Tests for :class:`~repro.analysis.summaries.ShardedSummaryCache`.

The sharded store is the concurrency story behind parallel batch
execution: N independent LRU shards partitioned by the key node's
*method* (the invalidation granularity), each behind its own lock.  The
tests cover the partition itself, capacity splitting, the aggregate
accounting contract (shard stats must reconcile exactly), and — the
load-bearing part — that concurrent ``store``/``lookup``/
``invalidate_method`` traffic from a thread pool leaves every counter
and ``total_facts()`` consistent.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ShardedSummaryCache, SummaryCache
from repro.analysis.ppta import PptaResult
from repro.analysis.summaries import shard_for_method
from repro.cfl.rsm import S1, S2
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.nodes import LocalNode


def node(method="C.m", name="x"):
    return LocalNode(method, name)


def summary(n_objects=1):
    return PptaResult(tuple(f"o{i}" for i in range(n_objects)), ())


class TestPartitioning:
    def test_partition_is_stable_and_method_keyed(self):
        cache = ShardedSummaryCache(shards=4)
        for method in ("A.m", "B.n", "C.o", "D.p", None):
            assert cache.shard_index(method) == cache.shard_index(method)
            assert cache.shard_index(method) == shard_for_method(method, 4)
        # Many methods spread over more than one shard.
        indices = {cache.shard_index(f"Class{i}.m") for i in range(32)}
        assert len(indices) > 1

    def test_same_method_lands_in_one_shard(self):
        cache = ShardedSummaryCache(shards=4)
        for i in range(6):
            cache.store(node("A.m", f"v{i}"), EMPTY_STACK, S1, summary())
        snapshots = cache.shard_snapshots()
        assert sorted(s.entries for s in snapshots) == [0, 0, 0, 6]

    def test_invalidate_method_hits_only_its_shard(self):
        cache = ShardedSummaryCache(shards=4)
        survivor = node("B.n", "z")
        cache.store(node("A.m", "x"), EMPTY_STACK, S1, summary())
        cache.store(node("A.m", "y"), EMPTY_STACK, S2, summary())
        cache.store(survivor, EMPTY_STACK, S1, summary())
        assert cache.invalidate_method("A.m") == 2
        assert cache.invalidated == 2
        assert len(cache) == 1
        assert (survivor, EMPTY_STACK, S1) in cache


class TestCapacity:
    def test_global_caps_split_across_shards(self):
        cache = ShardedSummaryCache(shards=3, max_entries=7)
        caps = [s.max_entries for s in cache.shard_snapshots()]
        assert sorted(caps) == [2, 2, 3]
        assert cache.max_entries == 7

    def test_caps_smaller_than_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedSummaryCache(shards=4, max_entries=2)
        with pytest.raises(ValueError):
            ShardedSummaryCache(shards=4, max_facts=3)
        with pytest.raises(ValueError):
            ShardedSummaryCache(shards=0)

    def test_per_shard_lru_eviction(self):
        cache = ShardedSummaryCache(shards=2, max_entries=4)
        # Everything in one method -> one shard with a cap of 2.
        nodes = [node("A.m", f"v{i}") for i in range(5)]
        for key_node in nodes:
            cache.store(key_node, EMPTY_STACK, S1, summary())
        assert cache.evictions == 3
        assert len(cache) == 2
        assert (nodes[4], EMPTY_STACK, S1) in cache
        assert (nodes[0], EMPTY_STACK, S1) not in cache

    def test_spawn_preserves_policy(self):
        cache = ShardedSummaryCache(shards=3, max_entries=9, max_facts=30)
        clone = cache.spawn()
        assert isinstance(clone, ShardedSummaryCache)
        assert clone.n_shards == 3
        assert clone.max_entries == 9 and clone.max_facts == 30
        assert len(clone) == 0

    def test_unbounded_shards_without_caps(self):
        cache = ShardedSummaryCache(shards=2)
        for i in range(64):
            cache.store(node(f"M{i}.m", "v"), EMPTY_STACK, S1, summary())
        assert len(cache) == 64
        assert cache.evictions == 0


class TestAggregation:
    def test_store_contract_parity_with_plain_cache(self):
        sharded = ShardedSummaryCache(shards=4)
        plain = SummaryCache()
        keys = [(node(f"M{i % 5}.m", f"v{i}"), EMPTY_STACK, S1) for i in range(12)]
        for store in (sharded, plain):
            for i, (key_node, stack, state) in enumerate(keys):
                store.store(key_node, stack, state, summary(1 + i % 3))
            for key_node, stack, state in keys[::2]:
                assert store.lookup(key_node, stack, state) is not None
            assert store.lookup(node("Nope.m", "q"), stack, state) is None
        assert len(sharded) == len(plain)
        assert sharded.total_facts() == plain.total_facts()
        assert sharded.approx_bytes() == plain.approx_bytes()
        assert sharded.summary_point_count() == plain.summary_point_count()
        assert sharded.hits == plain.hits and sharded.misses == plain.misses

    def test_snapshot_reconciles_with_shard_snapshots(self):
        cache = ShardedSummaryCache(shards=4, max_entries=8)
        for i in range(10):
            cache.store(node(f"M{i}.m", "v"), EMPTY_STACK, S1, summary(2))
            cache.lookup(node(f"M{i}.m", "v"), EMPTY_STACK, S1)
        cache.invalidate_method("M3.m")
        total = cache.stats_snapshot()
        shards = cache.shard_snapshots()
        assert total.entries == sum(s.entries for s in shards) == len(cache)
        assert total.facts == sum(s.facts for s in shards) == cache.total_facts()
        assert total.hits == sum(s.hits for s in shards)
        assert total.misses == sum(s.misses for s in shards)
        assert total.evictions == sum(s.evictions for s in shards)
        assert total.invalidated == sum(s.invalidated for s in shards)
        # Cross-source probe check: the loop issued exactly 10 lookups
        # (stores do not probe), so the shards must have recorded
        # exactly 10 hits-plus-misses between them.
        assert total.hits + total.misses == 10
        assert total.max_entries == 8

    def test_duplicate_store_refreshes_recency_through_shards(self):
        cache = ShardedSummaryCache(shards=1, max_entries=2)
        a, b, c = node(name="a"), node(name="b"), node(name="c")
        cache.store(a, EMPTY_STACK, S1, summary())
        cache.store(b, EMPTY_STACK, S1, summary())
        cache.store(a, EMPTY_STACK, S1, summary())
        cache.store(c, EMPTY_STACK, S1, summary())
        assert (a, EMPTY_STACK, S1) in cache
        assert (b, EMPTY_STACK, S1) not in cache

    def test_clear_resets_everything(self):
        cache = ShardedSummaryCache(shards=2)
        cache.store(node("A.m", "x"), EMPTY_STACK, S1, summary())
        cache.lookup(node("A.m", "x"), EMPTY_STACK, S1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.total_facts() == 0


class TestConcurrency:
    """Concurrent traffic must leave counters exactly consistent —
    that is the whole point of per-shard locking."""

    N_THREADS = 8
    OPS_PER_THREAD = 300

    def _hammer(self, cache, worker_id, probes):
        # Each worker mixes its own methods with methods shared by all
        # workers, so shards see genuine cross-thread contention.
        for i in range(self.OPS_PER_THREAD):
            own = node(f"Own{worker_id}.m", f"v{i % 7}")
            shared = node(f"Shared{i % 3}.m", f"v{i % 5}")
            cache.store(own, EMPTY_STACK, S1, summary(1 + i % 3))
            cache.store(shared, EMPTY_STACK, S1, summary(2))
            cache.lookup(own, EMPTY_STACK, S1)
            cache.lookup(shared, EMPTY_STACK, S1)
            probes[worker_id] += 2
            if i % 50 == 49:
                cache.invalidate_method(f"Shared{i % 3}.m")

    def _run_hammer(self, cache):
        probes = [0] * self.N_THREADS
        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            futures = [
                pool.submit(self._hammer, cache, worker_id, probes)
                for worker_id in range(self.N_THREADS)
            ]
            for future in futures:
                future.result()
        return sum(probes)

    def _check_consistency(self, cache, issued_probes):
        snap = cache.stats_snapshot()
        # Every probe was counted exactly once, as a hit or a miss.
        assert snap.hits + snap.misses == issued_probes
        # Fact accounting matches the resident entries exactly.
        resident = list(cache.entries())
        assert snap.entries == len(resident) == len(cache)
        assert snap.facts == sum(s.size for _key, s in resident)
        assert cache.total_facts() == snap.facts
        # Caps (when set) hold per shard after the dust settles.
        for shard_snap in cache.shard_snapshots():
            if shard_snap.max_entries is not None:
                assert shard_snap.entries <= shard_snap.max_entries

    def test_concurrent_traffic_unbounded(self):
        cache = ShardedSummaryCache(shards=4)
        issued = self._run_hammer(cache)
        self._check_consistency(cache, issued)

    def test_concurrent_traffic_bounded(self):
        cache = ShardedSummaryCache(shards=4, max_entries=32, max_facts=96)
        issued = self._run_hammer(cache)
        self._check_consistency(cache, issued)
        assert len(cache) <= 32
        assert cache.total_facts() <= 96

    def test_concurrent_invalidation_of_one_method(self):
        """Stores and invalidations of one method serialise on its
        shard's lock: the final state is all-or-none per operation, and
        the invalidated counter equals the sum of the return values."""
        cache = ShardedSummaryCache(shards=4)
        barrier = threading.Barrier(4)
        dropped = []

        def storer():
            barrier.wait()
            for i in range(200):
                cache.store(node("Hot.m", f"v{i % 10}"), EMPTY_STACK, S1, summary())

        def invalidator():
            barrier.wait()
            local = 0
            for _ in range(100):
                local += cache.invalidate_method("Hot.m")
            dropped.append(local)

        threads = [threading.Thread(target=storer) for _ in range(2)] + [
            threading.Thread(target=invalidator) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.invalidated == sum(dropped)
        remaining = cache.invalidate_method("Hot.m")
        assert len(cache) == 0
        assert cache.invalidated == sum(dropped) + remaining
        assert cache.total_facts() == 0
