"""Tests for the incremental re-analysis session (IDE/JIT scenario)."""

import pytest

from repro import (
    BoundedSummaryCache,
    DynSum,
    IncrementalAnalysisSession,
    NoRefine,
    build_pag,
    parse_program,
)

SOURCE = """
class Thing { }
class Other { }
class Gadget { }
class Factory {
  static method create() {
    t = new Thing;
    return t;
  }
}
class Store {
  field item;
  method put(x) { this.item = x; }
  method get() {
    r = this.item;
    return r;
  }
}
class Main {
  static method main() {
    a = Factory::create();
    s = new Store;
    s.put(a);
    out = s.get();
    unrelated = new Other;
    copy = unrelated;
  }
}
"""


def classes(result):
    return sorted(obj.class_name for obj in result.objects)


@pytest.fixture()
def session():
    return IncrementalAnalysisSession(parse_program(SOURCE))


class TestBasics:
    def test_initial_queries(self, session):
        assert classes(session.points_to_name("Main.main", "out")) == ["Thing"]
        assert classes(session.points_to_name("Main.main", "copy")) == ["Other"]

    def test_summary_count_exposed(self, session):
        session.points_to_name("Main.main", "out")
        assert session.summary_count > 0


class TestEdits:
    def test_edit_changes_answers(self, session):
        assert classes(session.points_to_name("Main.main", "out")) == ["Thing"]

        def new_body(m):
            m.alloc("g", "Gadget").ret("g")

        report = session.replace_body("Factory.create", new_body)
        assert "Factory.create" in report.edited
        assert classes(session.points_to_name("Main.main", "out")) == ["Gadget"]

    def test_edit_matches_cold_start(self, session):
        session.points_to_name("Main.main", "out")

        def new_body(m):
            m.alloc("g", "Gadget").ret("g")

        session.replace_body("Factory.create", new_body)
        # Cold-start reference on the edited program.
        cold = NoRefine(build_pag(session.program))
        for var in ("out", "a", "copy", "unrelated"):
            warm = session.points_to_name("Main.main", var)
            reference = cold.points_to_name("Main.main", var)
            # ObjectNodes from different PAG builds compare by identity;
            # the stable labels are the comparison currency.
            assert {o.object_id for o in warm.objects} == {
                o.object_id for o in reference.objects
            }, var

    def test_unrelated_summaries_migrate(self, session):
        # Warm the cache with queries through Store and the unrelated copy.
        session.points_to_name("Main.main", "out")
        session.points_to_name("Main.main", "copy")

        def new_body(m):
            m.alloc("g", "Gadget").ret("g")

        report = session.replace_body("Factory.create", new_body)
        assert report.migrated > 0  # Store/Main summaries survive

    def test_noop_edit_drops_only_edited_method(self, session):
        session.points_to_name("Main.main", "out")

        report = session.edit("Store.get", lambda method: None)
        assert report.edited == ("Store.get",)
        assert report.surface_changed == ()
        assert classes(session.points_to_name("Main.main", "out")) == ["Thing"]

    def test_surface_change_invalidates_dependents(self, session):
        """An edit in Main that starts *capturing* Helper.idn's return
        value gives idn's return variable its first outgoing global
        (exit) edge — a boundary-surface change in un-edited Helper, so
        Helper's summaries must be dropped, not migrated."""
        source = """
        class Thing { }
        class Helper {
          method idn(x) {
            y = x;
            return y;
          }
        }
        class Main {
          static method main() {
            h = new Helper;
            t = new Thing;
            h.idn(t);
          }
        }
        """
        session = IncrementalAnalysisSession(parse_program(source))
        # Warm Helper.idn's summaries: before the edit, `y` has no
        # outgoing global edge (the call result is discarded).
        session.points_to_name("Helper.idn", "y")

        def new_main(m):
            m.alloc("h", "Helper")
            m.alloc("t", "Thing")
            m.vcall("h", "idn", args=["t"], target="out")

        report = session.replace_body("Main.main", new_main)
        assert "Helper.idn" in report.surface_changed
        # And the post-edit answers see the captured flow:
        assert classes(session.points_to_name("Main.main", "out")) == ["Thing"]
        assert classes(session.points_to_name("Helper.idn", "y")) == ["Thing"]

    def test_repeated_edits(self, session):
        def body_gadget(m):
            m.alloc("g", "Gadget").ret("g")

        def body_other(m):
            m.alloc("o", "Other").ret("o")

        session.replace_body("Factory.create", body_gadget)
        assert classes(session.points_to_name("Main.main", "out")) == ["Gadget"]
        session.replace_body("Factory.create", body_other)
        assert classes(session.points_to_name("Main.main", "out")) == ["Other"]
        assert session.edit_count == 2

    def test_edit_report_repr(self, session):
        report = session.edit("Store.get", lambda m: None)
        assert "Store.get" in repr(report)


class TestObjectIdStability:
    def test_ids_are_method_scoped(self, session):
        ids = [stmt.object_id for _m, stmt in session.program.allocations()]
        assert all("@" in object_id for object_id in ids)

    def test_edit_does_not_renumber_other_methods(self, session):
        before = {
            stmt.object_id
            for method, stmt in session.program.allocations()
            if method.qualified_name != "Factory.create"
        }
        session.replace_body("Factory.create", lambda m: m.alloc("g", "Gadget").ret("g"))
        after = {
            stmt.object_id
            for method, stmt in session.program.allocations()
            if method.qualified_name != "Factory.create"
        }
        assert before == after


class DownsizingCache(BoundedSummaryCache):
    """A bounded cache modelling a host that tightens its memory budget
    across rebuilds: every ``spawn()`` is capped at ``spawn_entries``."""

    def __init__(self, max_entries=None, spawn_entries=2):
        super().__init__(max_entries=max_entries)
        self.spawn_entries = spawn_entries

    def spawn(self):
        return BoundedSummaryCache(max_entries=self.spawn_entries)


class TestMigrationAccounting:
    """Regression: ``EditReport.migrated`` used to count every
    ``new_cache.store()`` call, so when a capacity-bounded spawn could
    not hold everything, the report claimed more migrated summaries than
    were actually resident after the edit (and migration churned the
    spawn through needless evictions)."""

    SPAWN_CAP = 2

    def _warm_session(self):
        session = IncrementalAnalysisSession(
            parse_program(SOURCE),
            cache=DownsizingCache(max_entries=64, spawn_entries=self.SPAWN_CAP),
        )
        session.points_to_name("Main.main", "out")
        session.points_to_name("Main.main", "copy")
        session.points_to_name("Store.get", "r")
        return session

    def test_migrated_reconciles_with_resident_entries(self):
        session = self._warm_session()
        old_entries = len(session.analysis.cache)
        migratable = sum(
            1
            for (key_node, _stack, _state), _summary in session.analysis.cache.entries()
            if key_node.method != "Factory.create"
        )
        assert migratable > self.SPAWN_CAP  # the capped spawn must bite

        report = session.replace_body(
            "Factory.create", lambda m: m.alloc("t", "Thing").ret("t")
        )
        new_cache = session.analysis.cache

        # The report reconciles against what is actually resident.
        assert report.migrated == len(new_cache)
        assert report.migrated <= self.SPAWN_CAP
        assert report.migrated + report.dropped == old_entries
        # Capacity-aware migration admits instead of churning: nothing
        # stored into the spawn is evicted by migration itself.
        assert new_cache.evictions == 0

    def test_capped_spawn_keeps_hottest_entries(self):
        session = self._warm_session()
        # Touch Store.get's summaries last so they are the hottest.
        session.points_to_name("Store.get", "r")
        hottest = [
            (key_node.method, key_node.name, stack, state)
            for (key_node, stack, state), _summary in (
                session.analysis.cache.entries_by_recency(hottest_first=True)
            )
            if key_node.method != "Factory.create"
        ][: self.SPAWN_CAP]

        session.replace_body(
            "Factory.create", lambda m: m.alloc("t", "Thing").ret("t")
        )
        resident = {
            (key_node.method, key_node.name, stack, state)
            for (key_node, stack, state), _summary in session.analysis.cache.entries()
        }
        for key in hottest:
            assert key in resident

    def test_answers_unchanged_after_downsized_migration(self):
        session = self._warm_session()
        session.replace_body(
            "Factory.create", lambda m: m.alloc("t", "Thing").ret("t")
        )
        assert classes(session.points_to_name("Main.main", "out")) == ["Thing"]
        assert classes(session.points_to_name("Main.main", "copy")) == ["Other"]
