"""The ``repro-perf`` harness: structure, invariants, CLI plumbing.

Wall-clock values are host-dependent, so these tests assert the
harness's *shape* and its correctness gates (identical answers, equal
steps, eviction counts), never absolute times — the same stance the CI
``perf-smoke`` job takes.
"""

import json

import pytest

from repro.perf.harness import (
    PerfCheckError,
    main,
    run_eviction,
    run_figure4,
    run_perf,
)


@pytest.fixture(scope="module")
def quick_report():
    """One tiny in-process sweep shared by the structural tests."""
    return run_perf(
        quick=True,
        check=True,
        rounds=1,
        reps=1,
        scale=0.4,
        benchmarks=("jython",),
        clients=("SafeCast",),
    )


class TestReportShape:
    def test_figure4_rows_and_aggregate(self, quick_report):
        section = quick_report["figure4"]
        assert section["workloads"], "sweep produced no workloads"
        for row in section["workloads"]:
            assert row["steps"] > 0
            assert row["fast"]["steps_per_sec"] > 0
            assert row["reference"]["steps_per_sec"] > 0
            assert row["speedup"] > 0
        aggregate = section["aggregate"]
        assert aggregate["speedup"] > 0
        # The generator microbenchmark rides along with the figure
        # benchmarks.
        assert any(
            row["benchmark"] == "generator" for row in section["workloads"]
        )

    def test_eviction_section_counts_and_flatness(self, quick_report):
        section = quick_report["eviction"]
        assert [row["entries"] for row in section["sizes"]] == [1000, 5000]
        assert all(row["per_eviction_us"] > 0 for row in section["sizes"])
        assert section["flatness_ratio"] is not None

    def test_profile_section(self, quick_report):
        assert quick_report["profile"]
        top = quick_report["profile"][0]
        assert set(top) == {"function", "ncalls", "tottime_sec", "cumtime_sec"}

    def test_chaos_section_identical_and_injecting(self, quick_report):
        section = quick_report["chaos"]
        assert len(section["schedules"]) == 2  # the quick seed pair
        for row in section["schedules"]:
            assert row["identical"] is True
            assert row["faults"] > 0
            assert row["spec"].startswith("seed=")

    def test_check_flag_recorded(self, quick_report):
        assert quick_report["checked"] is True
        assert json.dumps(quick_report)  # JSON-serializable end to end


class TestInvariants:
    def test_eviction_bench_requires_real_evictions(self):
        # Tiny insert count still must evict once per insert.
        section = run_eviction((64,), inserts=16)
        assert section["sizes"][0]["per_eviction_us"] > 0

    def test_figure4_asserts_step_identity(self):
        # Sanity: the sweep itself raises PerfCheckError on divergence;
        # a healthy run must NOT raise.
        section = run_figure4(
            ("jython",), ("SafeCast",), rounds=1, reps=1, scale=0.4
        )
        assert section["workloads"][0]["steps"] > 0

    def test_perf_check_error_is_an_assertion(self):
        assert issubclass(PerfCheckError, AssertionError)


class TestCli:
    def test_main_writes_output_and_checks(self, tmp_path, capsys):
        out = tmp_path / "perf.json"
        code = main(
            [
                "--quick",
                "--check",
                "--rounds", "1",
                "--reps", "1",
                "--scale", "0.4",
                "--benchmarks", "jython",
                "--clients", "SafeCast",
                "--output", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["protocol"] == "repro-perf"
        assert report["checked"] is True
