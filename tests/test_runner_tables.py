"""Tests for the experiment runner and the table/figure formatters."""

import pytest

from repro import DynSum, NoRefine, RefinePts, StaSum
from repro.bench.batching import split_batches
from repro.bench.runner import (
    bench_analysis_config,
    run_batches,
    run_client,
    run_summary_series,
    speedup,
)
from repro.bench.suite import load_benchmark
from repro.bench.tables import (
    format_capability_table,
    format_figure4,
    format_figure5,
    format_speedup_summary,
    format_table3,
    format_table4,
)
from repro.clients import NullDerefClient, SafeCastClient
from repro.pag.stats import compute_statistics


@pytest.fixture(scope="module")
def instance():
    return load_benchmark("luindex", scale=0.5)


class TestBatching:
    def test_paper_protocol(self):
        batches = split_batches(list(range(25)), 10)
        assert [len(b) for b in batches] == [2] * 9 + [7]
        assert sum(batches, []) == list(range(25))

    def test_exact_division(self):
        batches = split_batches(list(range(20)), 10)
        assert all(len(b) == 2 for b in batches)

    def test_fewer_queries_than_batches(self):
        batches = split_batches([1, 2, 3], 10)
        assert len(batches) == 10
        assert batches[-1] == [1, 2, 3]

    def test_invalid_batch_count(self):
        with pytest.raises(ValueError):
            split_batches([1], 0)


class TestRunClient:
    def test_run_records_everything(self, instance):
        analysis = DynSum(instance.pag, bench_analysis_config())
        run = run_client(instance, SafeCastClient, analysis)
        assert run.benchmark == "luindex"
        assert run.client == "SafeCast"
        assert run.analysis == "DYNSUM"
        assert run.n_queries == run.safe + run.violations + run.unknown
        assert run.steps > 0
        assert run.time_sec >= 0
        assert set(run.verdict_counts) == {"safe", "violation", "unknown"}

    def test_analyses_agree_on_verdicts(self, instance):
        runs = [
            run_client(instance, SafeCastClient, cls(instance.pag, bench_analysis_config()))
            for cls in (NoRefine, DynSum)
        ]
        assert runs[0].safe == runs[1].safe
        assert runs[0].violations == runs[1].violations

    def test_speedup_helper(self, instance):
        nor = run_client(instance, SafeCastClient, NoRefine(instance.pag, bench_analysis_config()))
        dyn = run_client(instance, SafeCastClient, DynSum(instance.pag, bench_analysis_config()))
        ratio = speedup(nor, dyn, use_steps=True)
        assert ratio == pytest.approx(nor.steps / dyn.steps)


class TestBatchProtocols:
    def test_run_batches_shape(self, instance):
        analysis = DynSum(instance.pag, bench_analysis_config())
        series = run_batches(instance, NullDerefClient, analysis, n_batches=5)
        assert len(series.batch_steps) == 5
        assert len(series.batch_times) == 5
        assert len(series.summary_counts) == 5
        assert series.summary_counts == sorted(series.summary_counts)

    def test_summary_series(self, instance):
        dynsum = DynSum(instance.pag, bench_analysis_config())
        stasum = StaSum(instance.pag, bench_analysis_config())
        series, total = run_summary_series(
            instance, NullDerefClient, dynsum, stasum, n_batches=5
        )
        assert total == stasum.summary_count
        assert series.summary_counts[-1] <= total  # Figure 5 stays below 100%


class TestFormatters:
    def test_capability_table_is_table2(self, instance):
        analyses = [
            cls(instance.pag, bench_analysis_config())
            for cls in (NoRefine, RefinePts, DynSum)
        ]
        text = format_capability_table(analyses)
        assert "NOREFINE" in text
        assert "dynamic-across" in text
        assert "context-independent" in text

    def test_table3_rendering(self, instance):
        stats = compute_statistics(instance.pag, name="luindex")
        text = format_table3([stats], {"luindex": {"SafeCast": 10}})
        assert "luindex" in text
        assert "Locality" in text

    def test_table4_rendering(self, instance):
        runs = [
            run_client(instance, SafeCastClient, cls(instance.pag, bench_analysis_config()))
            for cls in (NoRefine, DynSum)
        ]
        text = format_table4(
            runs, ["luindex"], ["SafeCast"], ["NOREFINE", "DYNSUM"], use_steps=True
        )
        assert "NOREFINE" in text and "DYNSUM" in text

    def test_speedup_summary_rendering(self, instance):
        runs = [
            run_client(instance, SafeCastClient, cls(instance.pag, bench_analysis_config()))
            for cls in (NoRefine, DynSum)
        ]
        text = format_speedup_summary(
            runs, "NOREFINE", "DYNSUM", ["SafeCast"], ["luindex"]
        )
        assert "SafeCast" in text and "x" in text

    def test_figure4_rendering(self, instance):
        dyn = run_batches(
            instance, SafeCastClient, DynSum(instance.pag, bench_analysis_config()), 5
        )
        ref = run_batches(
            instance, SafeCastClient, RefinePts(instance.pag, bench_analysis_config()), 5
        )
        text = format_figure4([(dyn, ref)], n_batches=5)
        assert "luindex/SafeCast" in text

    def test_figure5_rendering(self, instance):
        dynsum = DynSum(instance.pag, bench_analysis_config())
        series = run_batches(instance, SafeCastClient, dynsum, 5)
        text = format_figure5([(series, 100)], n_batches=5)
        assert "%" in text
