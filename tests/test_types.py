"""Tests for ClassHierarchy: subtyping and virtual dispatch."""

import pytest

from repro.ir.ast import NULL_CLASS
from repro.ir.parser import parse_program
from repro.ir.types import ClassHierarchy
from repro.util.errors import IRError

SOURCE = """
class Animal {
  method speak() { return this; }
  method feed(x) { return x; }
}
class Dog extends Animal {
  method speak() { return this; }
}
class Puppy extends Dog { }
class Cat extends Animal { }
class Unrelated { }
class Main {
  static method main() {
    d = new Dog;
    d.speak();
  }
}
"""


@pytest.fixture(scope="module")
def hierarchy():
    return ClassHierarchy(parse_program(SOURCE))


class TestSubtyping:
    def test_reflexive(self, hierarchy):
        assert hierarchy.is_subtype("Dog", "Dog")

    def test_direct(self, hierarchy):
        assert hierarchy.is_subtype("Dog", "Animal")

    def test_transitive(self, hierarchy):
        assert hierarchy.is_subtype("Puppy", "Animal")

    def test_not_supertype(self, hierarchy):
        assert not hierarchy.is_subtype("Animal", "Dog")

    def test_siblings_unrelated(self, hierarchy):
        assert not hierarchy.is_subtype("Cat", "Dog")

    def test_null_is_subtype_of_everything(self, hierarchy):
        assert hierarchy.is_subtype(NULL_CLASS, "Animal")
        assert hierarchy.is_subtype(NULL_CLASS, "Unrelated")

    def test_superclasses_chain(self, hierarchy):
        assert hierarchy.superclasses("Puppy") == ["Puppy", "Dog", "Animal"]

    def test_subtypes_cone(self, hierarchy):
        assert set(hierarchy.subtypes("Animal")) == {"Animal", "Dog", "Puppy", "Cat"}
        assert hierarchy.subtypes("Unrelated") == ["Unrelated"]


class TestDispatch:
    def test_own_method(self, hierarchy):
        assert hierarchy.dispatch("Dog", "speak").qualified_name == "Dog.speak"

    def test_inherited_method(self, hierarchy):
        assert hierarchy.dispatch("Puppy", "speak").qualified_name == "Dog.speak"

    def test_inherited_from_root(self, hierarchy):
        assert hierarchy.dispatch("Puppy", "feed").qualified_name == "Animal.feed"

    def test_override_shadows(self, hierarchy):
        assert hierarchy.dispatch("Cat", "speak").qualified_name == "Animal.speak"

    def test_unknown_message(self, hierarchy):
        assert hierarchy.dispatch("Dog", "fly") is None

    def test_null_class_understands_nothing(self, hierarchy):
        assert hierarchy.dispatch(NULL_CLASS, "speak") is None

    def test_classes_understanding(self, hierarchy):
        understanding = hierarchy.classes_understanding("speak")
        assert set(understanding) == {"Animal", "Dog", "Puppy", "Cat"}

    def test_dispatch_cached(self, hierarchy):
        first = hierarchy.dispatch("Dog", "speak")
        second = hierarchy.dispatch("Dog", "speak")
        assert first is second


class TestHierarchyErrors:
    def test_cycle_detected(self):
        program = parse_program(
            """
            class A extends B { }
            class B extends A { }
            class Main { static method main() { x = new A; } }
            """,
            validate=False,
        )
        with pytest.raises(IRError):
            ClassHierarchy(program)

    def test_unknown_superclass_detected(self):
        program = parse_program(
            "class A extends Ghost { } class Main { static method main() { x = new A; } }",
            validate=False,
        )
        with pytest.raises(IRError):
            ClassHierarchy(program)
