"""Wire codec and snapshot format: adversarial decodes and round trips.

Two properties anchor the wire layer:

* **no traceback is reachable** — truncated JSON, wrong major version,
  unknown kinds, missing/unknown/ill-typed fields, and corrupt
  snapshots (including stats that disagree with the recorded entries)
  each raise exactly one typed error;
* **round-trip fidelity** — ``loads(dumps(store))`` preserves answers,
  LRU recency order, capacity policy and ``CacheStats`` for every store
  variant, over a real program's query traffic.
"""

import json

import pytest

from repro import (
    CachePolicy,
    DynSum,
    EnginePolicy,
    PointsToEngine,
    ProtocolError,
    SnapshotError,
    SummarySnapshot,
    build_pag,
    parse_program,
)
from repro.api import (
    PROTOCOL_VERSION,
    AliasRequest,
    BatchRequest,
    InvalidateRequest,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    WireObject,
    WireVerdict,
    decode_request,
    decode_response,
    encode,
)
from repro.bench.runner import bench_engine_policy

from conftest import FIGURE2_SOURCE


@pytest.fixture(scope="module")
def pag():
    return build_pag(parse_program(FIGURE2_SOURCE))


# ----------------------------------------------------------------------
# adversarial decode paths — each one a typed error, never a traceback
# ----------------------------------------------------------------------
class TestAdversarialDecode:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "{",
            '{"kind":"query","method":"Main.main"',  # truncated JSON
            "\x00\x01",
            "null",
        ],
    )
    def test_malformed_or_non_object_json(self, text):
        with pytest.raises(ProtocolError) as info:
            decode_request(text)
        assert info.value.code in ("malformed-json", "invalid-request")

    def test_pathological_nesting_is_malformed_not_a_crash(self):
        depth = 100_000
        with pytest.raises(ProtocolError) as info:
            decode_request("[" * depth + "]" * depth)
        assert info.value.code == "malformed-json"
        with pytest.raises(SnapshotError):
            SummarySnapshot.loads("[" * depth + "]" * depth)

    def test_wrong_major_version_rejected(self):
        line = '{"kind":"stats","protocol_version":"2.0"}'
        with pytest.raises(ProtocolError) as info:
            decode_request(line)
        assert info.value.code == "unsupported-version"

    def test_minor_version_drift_accepted(self):
        request = decode_request('{"kind":"stats","protocol_version":"1.9"}')
        assert isinstance(request, StatsRequest)

    @pytest.mark.parametrize(
        "version", ["", "one.zero", "1", "1.2.3", 7, None, [1, 0]]
    )
    def test_junk_version_rejected(self, version):
        payload = {"kind": "stats", "protocol_version": version}
        with pytest.raises(ProtocolError) as info:
            decode_request(json.dumps(payload))
        assert info.value.code == "invalid-request"

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError) as info:
            decode_request('{"kind":"frobnicate","protocol_version":"1.0"}')
        assert info.value.code == "unknown-kind"

    def test_missing_kind_and_missing_version(self):
        with pytest.raises(ProtocolError):
            decode_request('{"protocol_version":"1.0"}')
        with pytest.raises(ProtocolError):
            decode_request('{"kind":"stats"}')

    def test_missing_required_field(self):
        line = '{"kind":"query","method":"Main.main","protocol_version":"1.0"}'
        with pytest.raises(ProtocolError) as info:
            decode_request(line)
        assert info.value.code == "invalid-request"
        assert "var" in str(info.value)

    def test_unknown_field_rejected(self):
        line = (
            '{"kind":"query","method":"M.m","var":"v","shoes":2,'
            '"protocol_version":"1.0"}'
        )
        with pytest.raises(ProtocolError) as info:
            decode_request(line)
        assert "shoes" in str(info.value)

    def test_responses_ignore_unknown_fields_for_forward_compat(self):
        # The versioning policy's client half: a same-major server that
        # added response fields (a minor revision) must stay decodable
        # by this build.  Known fields are still validated strictly.
        line = (
            '{"kind":"stats-result","analysis":"DYNSUM","queries":1,'
            '"executed":1,"batches":0,"deduped":0,"steps":3,'
            '"incomplete":0,"edits":0,"from_the_future":{"x":1},'
            '"protocol_version":"1.7"}'
        )
        decoded = decode_response(line)
        assert decoded.analysis == "DYNSUM"
        assert not hasattr(decoded, "from_the_future")
        with pytest.raises(ProtocolError):
            decode_response(line.replace('"queries":1', '"queries":"one"'))

    @pytest.mark.parametrize(
        "field,value",
        [
            ("method", 7),
            ("var", None),
            ("context", "c1"),
            ("context", ["not-an-int"]),
            ("context", [True]),
            ("client", 3),
            ("payload", [1]),
        ],
    )
    def test_ill_typed_fields_rejected(self, field, value):
        payload = {
            "kind": "query",
            "method": "M.m",
            "var": "v",
            "protocol_version": PROTOCOL_VERSION,
        }
        payload[field] = value
        with pytest.raises(ProtocolError) as info:
            decode_request(json.dumps(payload))
        assert info.value.code == "invalid-request"
        assert field in str(info.value)

    def test_nested_batch_queries_validated(self):
        payload = {
            "kind": "batch",
            "queries": [{"method": "M.m"}],  # missing var
            "protocol_version": PROTOCOL_VERSION,
        }
        with pytest.raises(ProtocolError) as info:
            decode_request(json.dumps(payload))
        assert "queries[0]" in str(info.value)


# ----------------------------------------------------------------------
# request/response round trips through canonical JSON
# ----------------------------------------------------------------------
class TestCanonicalRoundTrip:
    REQUESTS = [
        QueryRequest("Main.main", "s1"),
        QueryRequest("Main.main", "s1", context=(3, 1), client="SafeCast",
                     payload=("String",)),
        BatchRequest(queries=(QueryRequest("A.m", "x"), QueryRequest("B.n", "y")),
                     dedupe=False, reorder=None),
        AliasRequest("A.m", "x", "B.n", "y", context1=(2,)),
        InvalidateRequest("Vector.get"),
        StatsRequest(),
    ]

    @pytest.mark.parametrize("request_obj", REQUESTS, ids=lambda r: type(r).__name__)
    def test_request_round_trip(self, request_obj):
        line = encode(request_obj)
        assert decode_request(line) == request_obj
        # Canonical form: re-encoding the decode is byte-identical.
        assert encode(decode_request(line)) == line

    def test_encoding_is_canonical(self):
        line = encode(StatsRequest())
        payload = json.loads(line)
        assert list(payload) == sorted(payload)
        assert " " not in line

    def test_response_round_trip(self):
        response = QueryResponse(
            objects=(
                WireObject(id="o1", class_name="Vector", contexts=((1, 2), ())),
            ),
            complete=True,
            steps=42,
            verdict=WireVerdict(client="SafeCast", status="safe"),
        )
        assert decode_response(encode(response)) == response


# ----------------------------------------------------------------------
# snapshot: adversarial loads
# ----------------------------------------------------------------------
def _snapshot_payload(pag):
    engine = PointsToEngine(pag, bench_engine_policy())
    engine.query_name("Main.main", "s1")
    engine.query_name("Main.main", "s2")
    return SummarySnapshot.capture(engine.cache).to_payload()


class TestAdversarialSnapshot:
    def test_truncated_json(self):
        with pytest.raises(SnapshotError):
            SummarySnapshot.loads('{"kind":"summary-snapshot"')

    def test_wrong_payload_kind(self):
        with pytest.raises(SnapshotError):
            SummarySnapshot.from_payload({"kind": "query"})

    @pytest.mark.parametrize("version", ["2.0", "x.y", "", None, "1"])
    def test_unsupported_snapshot_version(self, pag, version):
        payload = _snapshot_payload(pag)
        payload["snapshot_version"] = version
        with pytest.raises(SnapshotError):
            SummarySnapshot.from_payload(payload)

    def test_stats_disagreeing_with_entries_entries(self, pag):
        payload = _snapshot_payload(pag)
        payload["stats"]["entries"] += 1
        with pytest.raises(SnapshotError) as info:
            SummarySnapshot.from_payload(payload)
        assert "disagree" in str(info.value)

    def test_stats_disagreeing_with_entries_facts(self, pag):
        payload = _snapshot_payload(pag)
        payload["stats"]["facts"] -= 1
        with pytest.raises(SnapshotError) as info:
            SummarySnapshot.from_payload(payload)
        assert "disagree" in str(info.value)

    def test_unknown_store_kind(self, pag):
        payload = _snapshot_payload(pag)
        payload["store"] = "quantum"
        with pytest.raises(SnapshotError):
            SummarySnapshot.from_payload(payload)

    def test_ill_typed_stats_block(self, pag):
        payload = _snapshot_payload(pag)
        payload["stats"]["hits"] = "many"
        with pytest.raises(SnapshotError):
            SummarySnapshot.from_payload(payload)

    def test_damaged_entry(self, pag):
        payload = _snapshot_payload(pag)
        payload["entries"][0]["state"] = 9
        with pytest.raises(SnapshotError):
            SummarySnapshot.from_payload(payload)
        payload = _snapshot_payload(pag)
        del payload["entries"][0]["node"]
        with pytest.raises(SnapshotError):
            SummarySnapshot.from_payload(payload)

    def test_sharded_needs_reconciling_shard_stats(self, pag):
        engine = PointsToEngine(
            pag, bench_engine_policy(cache=CachePolicy(shards=4))
        )
        engine.query_name("Main.main", "s1")
        payload = SummarySnapshot.capture(engine.cache).to_payload()
        del payload["shard_stats"]
        with pytest.raises(SnapshotError):
            SummarySnapshot.from_payload(payload)
        payload = SummarySnapshot.capture(engine.cache).to_payload()
        payload["shard_stats"][0]["hits"] += 1
        with pytest.raises(SnapshotError) as info:
            SummarySnapshot.from_payload(payload)
        assert "reconcile" in str(info.value)

    def test_strict_restore_rejects_foreign_program(self, pag):
        snapshot = SummarySnapshot.from_payload(_snapshot_payload(pag))
        other = build_pag(
            parse_program(
                "class W { }\n"
                "class Main { static method main() { a = new W; } }"
            )
        )
        with pytest.raises(SnapshotError):
            snapshot.restore(other, strict=True)
        # Non-strict restore skips instead, and skipping is total here.
        store = snapshot.restore(other, strict=False)
        assert len(store) == 0


# ----------------------------------------------------------------------
# snapshot: the round-trip property over every store variant
# ----------------------------------------------------------------------
STORE_POLICIES = {
    "unbounded": CachePolicy(),
    "bounded": CachePolicy(max_entries=12),
    "sharded": CachePolicy(shards=4),
    "sharded-bounded": CachePolicy(shards=4, max_entries=12),
}


@pytest.mark.parametrize("policy_name", sorted(STORE_POLICIES))
def test_snapshot_round_trip_preserves_everything(pag, policy_name):
    """``loads(dumps(store))`` preserves answers, recency order, policy
    and stats for every store variant, after real query traffic."""
    engine = PointsToEngine(
        pag, bench_engine_policy(cache=STORE_POLICIES[policy_name])
    )
    for var in ("s1", "s2", "v1", "c2", "s1"):
        engine.query_name("Main.main", var)
    store = engine.cache
    restored = SummarySnapshot.loads(
        SummarySnapshot.capture(store).dumps()
    ).restore(pag)

    assert type(restored) is type(store)
    assert restored.stats_snapshot() == store.stats_snapshot()
    original = list(store.entries_by_recency(hottest_first=True))
    round_tripped = list(restored.entries_by_recency(hottest_first=True))
    assert [key for key, _ in round_tripped] == [key for key, _ in original]
    for (_, a), (_, b) in zip(original, round_tripped):
        assert a.objects == b.objects
        assert a.boundaries == b.boundaries
    if hasattr(store, "shard_snapshots"):
        assert restored.shard_snapshots() == store.shard_snapshots()

    # Answers are preserved: a fresh DYNSUM over the restored store
    # answers identically to one over the original store — and entirely
    # from warm summaries (no new entries).
    config = engine.analysis.config
    warm = DynSum(pag, config, cache=restored)
    cold = DynSum(pag, config, cache=store.spawn())
    for var in ("s1", "s2", "v1", "c2"):
        warm_result = warm.points_to_name("Main.main", var)
        cold_result = cold.points_to_name("Main.main", var)
        assert warm_result.pairs == cold_result.pairs
        assert warm_result.complete == cold_result.complete
        assert warm_result.steps <= cold_result.steps
