"""Tests for the three clients: query generation, predicates, verdicts."""

import pytest

from repro import DynSum, NoRefine
from repro.clients import FactoryMethodClient, NullDerefClient, SafeCastClient
from repro.clients.base import SAFE, UNKNOWN, VIOLATION

from tests.conftest import make_pag

CAST_SOURCE = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }
class Main {
  static method main() {
    d = new Dog;
    a = d;
    ok = (Dog) a;
    up = (Animal) a;
    c = new Cat;
    b = c;
    bad = (Dog) b;
  }
}
"""

NULL_SOURCE = """
class Cell { field val; }
class P { }
class Main {
  static method main() {
    good = new Cell;
    p = new P;
    good.val = p;
    x = good.val;

    bad = new Cell;
    n = null;
    bad.val = n;
    y = bad.val;
    z = y.val;
  }
}
"""

FACTORY_SOURCE = """
class Product { }
class GoodFactory {
  static method create() {
    p = new Product;
    return p;
  }
}
class CachedFactory {
  static field cache;
  static method create() {
    p = new Product;
    CachedFactory::cache = p;
    c = CachedFactory::cache;
    return c;
  }
}
class Passthrough {
  static method makeFrom(x) {
    return x;
  }
}
class Main {
  static method main() {
    a = GoodFactory::create();
    b = CachedFactory::create();
    ext = new Product;
    c = Passthrough::makeFrom(ext);
  }
}
"""


class TestSafeCast:
    @pytest.fixture(scope="class")
    def pag(self):
        return make_pag(CAST_SOURCE)

    def test_one_query_per_cast(self, pag):
        queries = SafeCastClient(pag).queries()
        assert len(queries) == 3

    def test_verdicts(self, pag):
        client = SafeCastClient(pag)
        verdicts = client.run(NoRefine(pag))
        by_target = {v.query.payload[0]: v.status for v in verdicts}
        # Two casts target Dog: one safe (d), one violating (c flows in).
        statuses = sorted(v.status for v in verdicts)
        assert statuses.count(SAFE) == 2
        assert statuses.count(VIOLATION) == 1
        assert by_target["Animal"] == SAFE  # upcast always safe

    def test_violation_names_offender(self, pag):
        client = SafeCastClient(pag)
        verdicts = client.run(NoRefine(pag))
        (violation,) = [v for v in verdicts if v.status == VIOLATION]
        assert any(obj.class_name == "Cat" for obj in violation.details)

    def test_predicate_is_monotone_downward(self, pag):
        client = SafeCastClient(pag)
        query = client.queries()[0]
        predicate = client.predicate(query)
        analysis = NoRefine(pag)
        objects = analysis.points_to(query.node(pag)).objects
        if predicate(objects):
            for obj in objects:
                assert predicate(frozenset([obj]))

    def test_unknown_on_budget_exhaustion(self, pag):
        from repro import AnalysisConfig

        client = SafeCastClient(pag)
        tiny = NoRefine(pag, AnalysisConfig(budget=1))
        verdicts = client.run(tiny)
        assert all(v.status in (UNKNOWN, VIOLATION) for v in verdicts)


class TestNullDeref:
    @pytest.fixture(scope="class")
    def pag(self):
        return make_pag(NULL_SOURCE)

    def test_queries_cover_derefs_not_this(self, pag):
        queries = NullDerefClient(pag).queries()
        assert {q.var for q in queries} == {"good", "bad", "y"}

    def test_verdicts(self, pag):
        client = NullDerefClient(pag)
        by_var = {v.query.var: v.status for v in client.run(NoRefine(pag))}
        assert by_var["good"] == SAFE
        assert by_var["bad"] == SAFE  # the base itself is never null
        assert by_var["y"] == VIOLATION  # y = bad.val may be null

    def test_offender_is_null_object(self, pag):
        client = NullDerefClient(pag)
        verdicts = client.run(NoRefine(pag))
        (violation,) = [v for v in verdicts if v.status == VIOLATION]
        assert all(o.class_name == "<null>" for o in violation.details)

    def test_dynsum_same_verdicts(self, pag):
        client = NullDerefClient(pag)
        nr = [v.status for v in client.run(NoRefine(pag))]
        ds = [v.status for v in client.run(DynSum(pag))]
        assert nr == ds


class TestFactoryM:
    @pytest.fixture(scope="class")
    def pag(self):
        return make_pag(FACTORY_SOURCE)

    def test_queries_cover_factory_returns(self, pag):
        queries = FactoryMethodClient(pag).queries()
        assert {q.method for q in queries} == {
            "GoodFactory.create",
            "CachedFactory.create",
            "Passthrough.makeFrom",
        }

    def test_verdicts(self, pag):
        client = FactoryMethodClient(pag)
        by_method = {v.query.method: v.status for v in client.run(NoRefine(pag))}
        assert by_method["GoodFactory.create"] == SAFE
        # The cached factory still returns an object allocated inside it
        # (flow-insensitively the cache round-trip is invisible), but the
        # passthrough returns a caller-allocated object: a violation.
        assert by_method["Passthrough.makeFrom"] == VIOLATION

    def test_prefix_configurable(self, pag):
        client = FactoryMethodClient(pag, prefixes=("zzz",))
        assert client.queries() == []

    def test_allowed_methods_cached(self, pag):
        client = FactoryMethodClient(pag)
        first = client._allowed_methods("GoodFactory.create")
        second = client._allowed_methods("GoodFactory.create")
        assert first is second


class TestQueryPlumbing:
    def test_query_node_resolution(self):
        pag = make_pag(CAST_SOURCE)
        client = SafeCastClient(pag)
        query = client.queries()[0]
        node = query.node(pag)
        assert node.name == query.var
        assert node.method == query.method

    def test_queries_are_deterministic(self):
        pag = make_pag(NULL_SOURCE)
        a = NullDerefClient(pag).queries()
        b = NullDerefClient(pag).queries()
        assert a == b
