"""Tests for DOT export, Timer, error types and the Table 3 stats."""

import time

import pytest

from repro.pag.dot import to_dot
from repro.pag.stats import compute_statistics
from repro.util.errors import (
    BudgetExceededError,
    IRError,
    ParseError,
    ReproError,
    ValidationError,
)
from repro.util.timer import Timer

from tests.conftest import FIGURE2_SOURCE, make_pag


class TestDot:
    @pytest.fixture(scope="class")
    def dot(self):
        return to_dot(make_pag(FIGURE2_SOURCE), graph_name="fig2")

    def test_is_a_digraph(self, dot):
        assert dot.startswith("digraph fig2 {")
        assert dot.rstrip().endswith("}")

    def test_contains_new_edges(self, dot):
        assert 'label="new"' in dot

    def test_contains_field_labels(self, dot):
        assert 'label="ld(elems)"' in dot
        assert 'label="st(arr)"' in dot

    def test_contains_call_edges(self, dot):
        assert "entry" in dot
        assert "exit" in dot

    def test_objects_are_boxes(self, dot):
        assert "shape=box" in dot

    def test_every_edge_endpoint_declared(self, dot):
        import re

        declared = set(re.findall(r"^  (n\d+) \[", dot, re.M))
        used = set()
        for a, b in re.findall(r"(n\d+) -> (n\d+)", dot):
            used.add(a)
            used.add(b)
        assert used <= declared


class TestStats:
    def test_statistics_consistency(self):
        pag = make_pag(FIGURE2_SOURCE)
        stats = compute_statistics(pag, name="fig2")
        assert stats.name == "fig2"
        assert stats.total_nodes == sum(pag.node_counts().values())
        assert stats.total_edges == sum(pag.edge_counts().values())
        assert stats.locality == pytest.approx(pag.locality())

    def test_as_row_shape(self):
        pag = make_pag(FIGURE2_SOURCE)
        row = compute_statistics(pag, name="fig2").as_row()
        assert row[0] == "fig2"
        assert row[-1].endswith("%")


class TestTimer:
    def test_measures_elapsed(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_accumulates(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ParseError, IRError)
        assert issubclass(ValidationError, IRError)
        assert issubclass(IRError, ReproError)
        assert issubclass(BudgetExceededError, ReproError)

    def test_parse_error_location_formatting(self):
        err = ParseError("boom", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3
        assert err.column == 7

    def test_budget_error_carries_limit(self):
        assert BudgetExceededError(42).budget == 42
