"""The repro-lint battery: per-rule violating + conforming fixtures,
the suppression and baseline workflows, the CLI surface, and the meta
checks that keep the linter honest — the shipped tree must lint clean,
and the HOT001 registry must match what the perf harness measures.

Fixtures are written into tmp_path project trees and linted through the
real CLI entry point (in-process `main(argv)`), so every test covers
path discovery, rule dispatch, suppression/baseline splitting and exit
codes together.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.cli import ALL_RULES, main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def write(root, relpath, text):
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def lint(root, *argv):
    return lint_main(["--root", str(root), *argv])


def findings_of(capsys):
    """Parse `file:line:col: RULE message` lines printed to stdout."""
    out = capsys.readouterr().out
    rows = []
    for line in out.splitlines():
        if ": " not in line:
            continue
        location, _, rest = line.partition(": ")
        rule, _, message = rest.partition(" ")
        rows.append((location, rule, message))
    return rows


# ----------------------------------------------------------------------
# LOCK001
# ----------------------------------------------------------------------
LOCK_VIOLATING = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []  # guarded-by: _lock
            self.count = 0  # guarded-by: _lock

        def add(self, x):
            self._items.append(x)

        def bump(self):
            self.count += 1
"""

LOCK_CONFORMING = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = []  # guarded-by: _lock
            self.count = 0  # guarded-by: _lock

        def add(self, x):
            with self._lock:
                self._items.append(x)
                self.count += 1

        def _drain_locked(self):
            self._items.clear()

        def snapshot(self):
            return self.count  # reads are out of scope
"""


class TestLockDiscipline:
    def test_unlocked_mutations_are_flagged(self, tmp_path, capsys):
        write(tmp_path, "src/mylib.py", LOCK_VIOLATING)
        assert lint(tmp_path, "--rule", "LOCK001") == 1
        rows = findings_of(capsys)
        assert len(rows) == 2
        assert all(rule == "LOCK001" for _, rule, _ in rows)
        assert any("'_items' outside 'with self._lock'" in m for _, _, m in rows)
        assert any("'count' outside 'with self._lock'" in m for _, _, m in rows)

    def test_locked_and_locked_suffix_are_clean(self, tmp_path):
        write(tmp_path, "src/mylib.py", LOCK_CONFORMING)
        assert lint(tmp_path, "--rule", "LOCK001") == 0

    def test_inline_suppression_is_honored(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/mylib.py",
            LOCK_VIOLATING.replace(
                "self._items.append(x)",
                "self._items.append(x)  # repro-lint: ignore[LOCK001]",
            ).replace(
                "self.count += 1",
                "# repro-lint: ignore[LOCK001]\n            self.count += 1",
            ),
        )
        assert lint(tmp_path, "--rule", "LOCK001") == 0
        assert "2 suppressed" in capsys.readouterr().err

    def test_suppression_is_rule_scoped(self, tmp_path):
        write(
            tmp_path,
            "src/mylib.py",
            LOCK_VIOLATING.replace(
                "self._items.append(x)",
                "self._items.append(x)  # repro-lint: ignore[HOT001]",
            ),
        )
        assert lint(tmp_path, "--rule", "LOCK001") == 1


# ----------------------------------------------------------------------
# LOCK002
# ----------------------------------------------------------------------
SHARD_VIOLATING = """
    import threading

    class Sharded:
        def __init__(self, n):
            self._shards = tuple({} for _ in range(n))
            self._locks = tuple(threading.Lock() for _ in range(n))

        def _slot(self, key):
            index = hash(key) % len(self._shards)
            return self._shards[index], self._locks[index]

        def move(self, a, b):
            shard, lock = self._slot(a)
            other, dst_lock = self._slot(b)
            with lock:
                with dst_lock:
                    other.update(shard)
"""

SHARD_CONFORMING = """
    import threading

    class Sharded:
        def __init__(self, n):
            self._shards = tuple({} for _ in range(n))
            self._locks = tuple(threading.Lock() for _ in range(n))

        def _slot(self, key):
            index = hash(key) % len(self._shards)
            return self._shards[index], self._locks[index]

        def clear(self):
            for shard, lock in zip(self._shards, self._locks):
                with lock:
                    shard.clear()
"""


class TestShardLockNesting:
    def test_nested_shard_locks_are_flagged(self, tmp_path, capsys):
        write(tmp_path, "src/shards.py", SHARD_VIOLATING)
        assert lint(tmp_path, "--rule", "LOCK002") == 1
        rows = findings_of(capsys)
        assert len(rows) == 1
        assert "second shard lock" in rows[0][2]

    def test_one_lock_at_a_time_is_clean(self, tmp_path):
        write(tmp_path, "src/shards.py", SHARD_CONFORMING)
        assert lint(tmp_path, "--rule", "LOCK002") == 0


# ----------------------------------------------------------------------
# HOT001 (fixtures live at the registered relpath)
# ----------------------------------------------------------------------
HOT_VIOLATING = """
    FUEL = 3

    def _run_ppta_fast(records, work):
        out = []
        out_append = out.append
        for item in work:
            out_append(transform(item))
        return out

    def _run_ppta_array(records, work):
        total = 0
        for item in work:
            try:
                total += self.weight(item)
            except KeyError:
                pass
        return total
"""

HOT_CONFORMING = """
    FUEL = 3

    class BudgetError(Exception):
        pass

    def _run_ppta_fast(records, work, transform):
        out = []
        out_append = out.append
        for item in work:
            if item > FUEL:
                raise BudgetError(item)
            out_append(transform(item))
        return out

    def _run_ppta_array(records, work):
        total = 0
        for item in work:
            total += item
        return total
"""


class TestHotLoopHygiene:
    def test_loop_body_violations_are_flagged(self, tmp_path, capsys):
        write(tmp_path, "src/repro/analysis/ppta.py", HOT_VIOLATING)
        assert lint(tmp_path, "--rule", "HOT001") == 1
        messages = [m for _, _, m in findings_of(capsys)]
        assert any("global-name load of 'transform'" in m for m in messages)
        assert any("try/except inside a loop body" in m for m in messages)
        assert any("self attribute load '.weight'" in m for m in messages)
        # `self` itself is also an unbound global here; the point is the
        # discipline flags every unbound name, not the exact taxonomy.

    def test_const_and_raise_exemptions(self, tmp_path):
        # FUEL (ALL_CAPS) and BudgetError (raise callee) load in the
        # loop body yet are exempt by design; transform is a parameter.
        write(tmp_path, "src/repro/analysis/ppta.py", HOT_CONFORMING)
        assert lint(tmp_path, "--rule", "HOT001") == 0

    def test_missing_registered_function_is_flagged(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/repro/analysis/ppta.py",
            "def _run_ppta_fast(records, work):\n    return []\n",
        )
        assert lint(tmp_path, "--rule", "HOT001") == 1
        messages = [m for _, _, m in findings_of(capsys)]
        assert any(
            "registered hot function '_run_ppta_array' not found" in m
            for m in messages
        )

    def test_unregistered_modules_are_ignored(self, tmp_path):
        write(tmp_path, "src/other.py", HOT_VIOLATING)
        assert lint(tmp_path, "--rule", "HOT001") == 0

    # -- impl="native" entries: existence-checked in the C source, ----
    # -- never hygiene-checked as Python --------------------------------
    def test_native_entries_are_not_hygiene_checked(
        self, tmp_path, monkeypatch
    ):
        """A registered kernel driver must not make HOT001 demand a
        Python def of that name — the regression the HotFunction.impl
        marker exists to prevent."""
        from repro.devtools.registry import HOT_FUNCTIONS, HotFunction

        monkeypatch.setitem(
            HOT_FUNCTIONS,
            "src/repro/analysis/ppta.py",
            (
                HotFunction("_run_ppta_fast"),
                HotFunction("rk_ppta", impl="native"),
            ),
        )
        write(
            tmp_path,
            "src/repro/analysis/ppta.py",
            "# C twin: rk_ppta\n"
            "def _run_ppta_fast(records, work):\n    return []\n",
        )
        assert lint(tmp_path, "--rule", "HOT001") == 0

    def test_native_symbol_present_is_clean(self, tmp_path, monkeypatch):
        from repro.devtools.registry import HOT_FUNCTIONS, HotFunction

        monkeypatch.setitem(
            HOT_FUNCTIONS,
            "src/mykernel.c",
            (HotFunction("rk_probe", impl="native"),),
        )
        write(tmp_path, "src/mykernel.c", "int rk_probe(void) { return 0; }\n")
        write(tmp_path, "src/ok.py", "x = 1\n")
        assert lint(tmp_path, "--rule", "HOT001") == 0

    def test_native_symbol_missing_is_flagged(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.devtools.registry import HOT_FUNCTIONS, HotFunction

        monkeypatch.setitem(
            HOT_FUNCTIONS,
            "src/mykernel.c",
            (HotFunction("rk_probe", impl="native"),),
        )
        write(tmp_path, "src/mykernel.c", "int other_symbol(void) { return 0; }\n")
        write(tmp_path, "src/ok.py", "x = 1\n")
        assert lint(tmp_path, "--rule", "HOT001") == 1
        messages = [m for _, _, m in findings_of(capsys)]
        assert any(
            "native hot function 'rk_probe' not found" in m for m in messages
        )

    def test_absent_native_file_is_skipped_silently(self, tmp_path):
        """Fixture projects carry no kernel.c; the shipped registry's
        native entries must not flag them."""
        write(tmp_path, "src/ok.py", "x = 1\n")
        assert lint(tmp_path, "--rule", "HOT001") == 0


# ----------------------------------------------------------------------
# ASYNC001 (fixtures live at the registered async root)
# ----------------------------------------------------------------------
ASYNC_VIOLATING = """
    import time

    class Server:
        async def tick(self):
            time.sleep(0.1)

        async def respond(self, line):
            return self._handle_line(line)
"""

ASYNC_CONFORMING = """
    import asyncio

    class Server:
        async def tick(self):
            await asyncio.sleep(0.1)

        async def respond(self, loop, executor, line):
            return await loop.run_in_executor(
                executor, self._handle_line, line
            )

        async def flush(self):
            def drain():  # executor hand-off: runs off-loop
                import time
                time.sleep(0.1)
            return drain
"""


class TestNoBlockingInAsync:
    def test_blocking_calls_in_async_defs_are_flagged(self, tmp_path, capsys):
        write(tmp_path, "src/repro/cacheserver/aserver.py", ASYNC_VIOLATING)
        assert lint(tmp_path, "--rule", "ASYNC001") == 1
        messages = [m for _, _, m in findings_of(capsys)]
        assert any("time.sleep" in m and "asyncio.sleep" in m for m in messages)
        assert any("run_in_executor" in m for m in messages)

    def test_executor_handoff_is_clean(self, tmp_path):
        # Passing the bound dispatcher *to* the executor is the fix;
        # a nested sync def may block freely (it runs off-loop).
        write(tmp_path, "src/repro/cacheserver/aserver.py", ASYNC_CONFORMING)
        assert lint(tmp_path, "--rule", "ASYNC001") == 0

    def test_import_closure_is_followed(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/repro/cacheserver/aserver.py",
            "from repro.util.pump import pump\n",
        )
        write(
            tmp_path,
            "src/repro/util/pump.py",
            'async def pump(path):\n    return open(path).read()\n',
        )
        # Same content outside the closure: not in scope, not flagged.
        write(
            tmp_path,
            "src/repro/util/unrelated.py",
            'async def pump(path):\n    return open(path).read()\n',
        )
        assert lint(tmp_path, "--rule", "ASYNC001") == 1
        rows = findings_of(capsys)
        assert len(rows) == 1
        assert rows[0][0].startswith("src/repro/util/pump.py")
        assert "blocking file I/O" in rows[0][2]

    def test_no_async_root_means_no_scope(self, tmp_path):
        write(
            tmp_path,
            "src/repro/util/pump.py",
            'async def pump(path):\n    return open(path).read()\n',
        )
        assert lint(tmp_path, "--rule", "ASYNC001") == 0


# ----------------------------------------------------------------------
# WIRE001
# ----------------------------------------------------------------------
WIRE_VIOLATING = """
    from dataclasses import dataclass

    PROTOCOL_VERSION = "1.4"

    @dataclass(frozen=True)
    class PingRequest:
        count: int = 0
        protocol_version: str = "1.4"

    @dataclass(frozen=True)
    class PongResponse:
        payload: SneakyType = None
        protocol_version: str = PROTOCOL_VERSION

    REQUEST_KINDS = {"ping": PingRequest}
    RESPONSE_KINDS = {}
"""

WIRE_CONFORMING = """
    from dataclasses import dataclass
    from typing import Optional, Tuple

    PROTOCOL_VERSION = "1.4"

    @dataclass(frozen=True)
    class PingRequest:
        count: int = 0
        tags: Tuple[str, ...] = ()
        protocol_version: str = PROTOCOL_VERSION

    @dataclass(frozen=True)
    class PongResponse:
        echo: Optional[PingRequest] = None
        protocol_version: str = PROTOCOL_VERSION

    REQUEST_KINDS = {"ping": PingRequest}
    RESPONSE_KINDS = {"pong": PongResponse}
"""

WIRE_README = """
    # fixture

    | Version | Added |
    |---------|-------|
    | 1.3     | old   |
    | {newest} | new  |
"""


class TestProtocolDrift:
    def _project(self, tmp_path, protocol, newest="1.4", service=None):
        write(tmp_path, "src/repro/api/protocol.py", protocol)
        write(tmp_path, "README.md", WIRE_README.format(newest=newest))
        if service is not None:
            write(tmp_path, "src/repro/api/service.py", service)

    def test_drift_is_flagged(self, tmp_path, capsys):
        self._project(tmp_path, WIRE_VIOLATING)
        assert lint(tmp_path, "--rule", "WIRE001") == 1
        messages = [m for _, _, m in findings_of(capsys)]
        assert any(
            "PingRequest.protocol_version must default to the "
            "PROTOCOL_VERSION constant" in m
            for m in messages
        )
        assert any(
            "PongResponse is not registered in RESPONSE_KINDS" in m
            for m in messages
        )
        assert any("SneakyType" in m for m in messages)

    def test_consistent_contract_is_clean(self, tmp_path):
        self._project(tmp_path, WIRE_CONFORMING)
        assert lint(tmp_path, "--rule", "WIRE001") == 0

    def test_stale_readme_table_is_flagged(self, tmp_path, capsys):
        self._project(tmp_path, WIRE_CONFORMING, newest="1.3")
        assert lint(tmp_path, "--rule", "WIRE001") == 1
        rows = findings_of(capsys)
        assert rows[0][0].startswith("README.md")
        assert "tops out at 1.3 but PROTOCOL_VERSION is 1.4" in rows[0][2]

    def test_service_must_import_not_restate_the_version(
        self, tmp_path, capsys
    ):
        self._project(
            tmp_path,
            WIRE_CONFORMING,
            service='PROTOCOL_VERSION = "1.4"\n',
        )
        assert lint(tmp_path, "--rule", "WIRE001") == 1
        messages = [m for _, _, m in findings_of(capsys)]
        assert any("redefines PROTOCOL_VERSION" in m for m in messages)
        assert any("must import PROTOCOL_VERSION" in m for m in messages)

    def test_importing_service_is_clean(self, tmp_path):
        self._project(
            tmp_path,
            WIRE_CONFORMING,
            service="from repro.api.protocol import PROTOCOL_VERSION\n",
        )
        assert lint(tmp_path, "--rule", "WIRE001") == 0


# ----------------------------------------------------------------------
# ERR001
# ----------------------------------------------------------------------
ERR_VIOLATING = """
    def dispatch(line):
        try:
            return handle(line)
        except Exception:
            return None
"""

ERR_CONFORMING = """
    from repro.api.protocol import ErrorResponse, WireError

    def dispatch(line):
        try:
            return handle(line)
        except OSError:
            return None

    def convert(line):
        try:
            return handle(line)
        except Exception as exc:
            return ErrorResponse(code="internal", message=str(exc))

    def reraise(line):
        try:
            return handle(line)
        except Exception:
            raise
"""


class TestTypedErrorDiscipline:
    def test_silent_broad_except_is_flagged(self, tmp_path, capsys):
        write(tmp_path, "src/repro/api/dispatch.py", ERR_VIOLATING)
        assert lint(tmp_path, "--rule", "ERR001") == 1
        rows = findings_of(capsys)
        assert len(rows) == 1
        assert (
            "broad 'except Exception' in dispatch neither re-raises nor "
            "produces a typed wire error" in rows[0][2]
        )

    def test_narrow_convert_and_reraise_are_clean(self, tmp_path):
        write(tmp_path, "src/repro/api/dispatch.py", ERR_CONFORMING)
        assert lint(tmp_path, "--rule", "ERR001") == 0

    def test_paths_outside_the_wire_tiers_are_not_in_scope(self, tmp_path):
        write(tmp_path, "src/repro/analysis/dispatch.py", ERR_VIOLATING)
        assert lint(tmp_path, "--rule", "ERR001") == 0


# ----------------------------------------------------------------------
# ERR002
# ----------------------------------------------------------------------
FAIL_OPEN_VIOLATING = """
    def lookup(self, key):
        try:
            return self._exchange(key)
        except ShardUnavailable:
            return None

    def resolve(self, ref):
        try:
            return self._exchange(ref)
        except (ProtocolError, SnapshotError):
            pass
"""

FAIL_OPEN_CONFORMING = """
    from repro.api.protocol import ErrorResponse

    def counted(self, key):
        try:
            return self._exchange(key)
        except ShardUnavailable:
            self._bump("degraded")
            return None

    def tallied(self, key):
        try:
            return self._exchange(key)
        except (ProtocolError, SnapshotError):
            self.seed_failures += 1
            return None

    def converted(self, line):
        try:
            return self._dispatch(line)
        except Exception as exc:
            return ErrorResponse(code="internal", message=str(exc))

    def reraised(self, line):
        try:
            return self._dispatch(line)
        except Exception:
            raise

    def teardown(self):
        try:
            self._sock.close()
        except OSError:
            pass
"""


class TestFailOpenAccounting:
    def test_uncounted_fall_open_is_flagged(self, tmp_path, capsys):
        write(tmp_path, "src/repro/cacheserver/client.py", FAIL_OPEN_VIOLATING)
        assert lint(tmp_path, "--rule", "ERR002") == 1
        rows = findings_of(capsys)
        assert len(rows) == 2
        assert (
            "fail-open 'except ShardUnavailable' in lookup neither counts "
            "the degradation nor re-raises/converts it" in rows[0][2]
        )
        assert "(ProtocolError, SnapshotError)" in rows[1][2]

    def test_counted_converted_reraised_and_teardown_are_clean(self, tmp_path):
        write(tmp_path, "src/repro/cacheserver/client.py", FAIL_OPEN_CONFORMING)
        assert lint(tmp_path, "--rule", "ERR002") == 0

    def test_paths_outside_the_serving_client_are_not_in_scope(self, tmp_path):
        # ERR001's wire tiers are wider than ERR002's fail-open scope:
        # the api/ layer converts, it never silently degrades.
        write(tmp_path, "src/repro/api/dispatch.py", FAIL_OPEN_VIOLATING)
        assert lint(tmp_path, "--rule", "ERR002") == 0


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------
class TestBaseline:
    def test_write_refuse_justify_roundtrip(self, tmp_path, capsys):
        write(tmp_path, "src/repro/api/dispatch.py", ERR_VIOLATING)
        baseline = tmp_path / "lint-baseline.json"

        assert lint(tmp_path, "--write-baseline") == 0
        assert baseline.exists()
        capsys.readouterr()

        # A freshly written baseline carries TODO justifications, which
        # the loader refuses: grandfathering forces a written review.
        assert lint(tmp_path) == 2
        assert "needs a real justification" in capsys.readouterr().err

        payload = json.loads(baseline.read_text())
        for entry in payload["findings"]:
            entry["justification"] = "legacy fail-open path, tracked"
        baseline.write_text(json.dumps(payload))

        assert lint(tmp_path) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_baseline_survives_unrelated_edits(self, tmp_path, capsys):
        source = write(tmp_path, "src/repro/api/dispatch.py", ERR_VIOLATING)
        lint(tmp_path, "--write-baseline")
        baseline = tmp_path / "lint-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["findings"][0]["justification"] = "known, tracked"
        baseline.write_text(json.dumps(payload))
        # Shift the finding's line number: the (rule, file, message) key
        # still matches.
        source.write_text("X = 1\nY = 2\n" + source.read_text())
        capsys.readouterr()
        assert lint(tmp_path) == 0
        assert "1 baselined" in capsys.readouterr().err

    def test_fresh_findings_fail_despite_baseline(self, tmp_path):
        write(tmp_path, "src/repro/api/dispatch.py", ERR_VIOLATING)
        lint(tmp_path, "--write-baseline")
        baseline = tmp_path / "lint-baseline.json"
        payload = json.loads(baseline.read_text())
        payload["findings"][0]["justification"] = "known, tracked"
        baseline.write_text(json.dumps(payload))
        write(tmp_path, "src/mylib.py", LOCK_VIOLATING)
        assert lint(tmp_path) == 1


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliSurface:
    def test_json_report_shape(self, tmp_path, capsys):
        write(tmp_path, "src/mylib.py", LOCK_VIOLATING)
        assert lint(tmp_path, "--json") == 1
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {
            "root", "rules", "counts", "findings", "baselined",
        }
        assert report["rules"] == sorted(ALL_RULES)
        assert report["counts"] == {
            "fresh": 2, "suppressed": 0, "baselined": 0,
        }
        for finding in report["findings"]:
            assert set(finding) == {"file", "line", "col", "rule", "message"}
            assert finding["rule"] == "LOCK001"

    def test_syntax_errors_become_parse_findings(self, tmp_path, capsys):
        write(tmp_path, "src/broken.py", "def f(:\n")
        write(tmp_path, "src/mylib.py", LOCK_VIOLATING)
        assert lint(tmp_path) == 1
        rows = findings_of(capsys)
        # The broken file reports PARSE; the parseable file still lints.
        assert any(rule == "PARSE" for _, rule, _ in rows)
        assert any(rule == "LOCK001" for _, rule, _ in rows)

    def test_list_rules_names_the_catalogue(self, tmp_path, capsys):
        assert lint(tmp_path, "--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in (
            "LOCK001", "LOCK002", "HOT001", "ASYNC001", "WIRE001", "ERR001",
            "ERR002",
        ):
            assert rule_id in out
        assert set(ALL_RULES) == {
            "LOCK001", "LOCK002", "HOT001", "ASYNC001", "WIRE001", "ERR001",
            "ERR002",
        }

    def test_unknown_rule_is_a_usage_error(self, tmp_path):
        assert lint(tmp_path, "--rule", "NOPE001") == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        assert lint(tmp_path, "--paths", str(tmp_path / "nowhere")) == 2


# ----------------------------------------------------------------------
# meta: the linter applied to this repository
# ----------------------------------------------------------------------
class TestSelfHosting:
    def test_shipped_tree_is_lint_clean(self, capsys):
        """repro-lint exits 0 on the shipped src/ — every finding is
        fixed, suppressed, or baselined with a written justification."""
        assert lint_main(["--root", str(REPO_ROOT)]) == 0

    def test_shipped_baseline_is_small_and_justified(self):
        payload = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8")
        )
        assert payload["findings"], "empty baseline should just be deleted"
        for entry in payload["findings"]:
            assert len(entry["justification"]) > 40
            assert "TODO" not in entry["justification"]

    def test_hot_registry_matches_the_perf_harness(self):
        """HOT001 lints exactly the loops repro-perf measures."""
        from repro.devtools.registry import hot_function_ids
        from repro.perf.harness import measured_hot_functions

        assert measured_hot_functions() == hot_function_ids()


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
