"""Shared fixtures: canonical programs used across the test suite."""

import pytest

from repro import build_pag, parse_program

#: The paper's Figure 2 program, transcribed into PIR.  Variable and
#: method names mirror the paper (init == the Vector constructor,
#: initWith/initEmpty == the two Client constructors).
FIGURE2_SOURCE = """
class Object { }
class ObjectArray { field arr; }
class Integer { }
class String { }
class Vector {
  field elems;
  field count;
  method init() {
    t = new ObjectArray;
    this.elems = t;
  }
  method add(p) {
    t = this.elems;
    t.arr = p;
  }
  method get(i) {
    t = this.elems;
    r = t.arr;
    return r;
  }
}
class Client {
  field vec;
  method initEmpty() { }
  method initWith(v) { this.vec = v; }
  method set(v) { this.vec = v; }
  method retrieve() {
    t = this.vec;
    s = t.get(zero);
    return s;
  }
}
class Main {
  static method main() {
    v1 = new Vector;
    v1.init();
    tmp1 = new Integer;
    v1.add(tmp1);
    c1 = new Client;
    c1.initWith(v1);
    v2 = new Vector;
    v2.init();
    tmp2 = new String;
    v2.add(tmp2);
    c2 = new Client;
    c2.initEmpty();
    c2.set(v2);
    s1 = c1.retrieve();
    s2 = c2.retrieve();
  }
}
"""

#: A minimal single-method program: allocation + copy chain.
STRAIGHTLINE_SOURCE = """
class Widget { }
class Main {
  static method main() {
    a = new Widget;
    b = a;
    c = b;
  }
}
"""

#: Field store/load through two aliased bases.
FIELD_ALIAS_SOURCE = """
class Cell { field val; }
class Payload { }
class Main {
  static method main() {
    cell = new Cell;
    alias = cell;
    p = new Payload;
    alias.val = p;
    out = cell.val;
  }
}
"""

#: Two calls to the same callee with different arguments: only a
#: context-sensitive analysis keeps the returns apart.
TWO_CALLS_SOURCE = """
class A { }
class B { }
class Id {
  method identity(x) { return x; }
}
class Main {
  static method main() {
    id = new Id;
    a = new A;
    b = new B;
    ra = id.identity(a);
    rb = id.identity(b);
  }
}
"""

#: Globals are context-insensitive: both reads see both writes.
GLOBALS_SOURCE = """
class A { }
class B { }
class G {
  static field slot;
}
class Main {
  static method main() {
    a = new A;
    b = new B;
    G::slot = a;
    G::slot = b;
    x = G::slot;
  }
}
"""

#: Recursion: list-length style self call, collapsed by SCC detection.
RECURSION_SOURCE = """
class A { }
class Rec {
  method spin(x) {
    y = this.spin(x);
    return x;
  }
}
class Main {
  static method main() {
    r = new Rec;
    a = new A;
    out = r.spin(a);
  }
}
"""


@pytest.fixture(scope="session")
def figure2_program():
    return parse_program(FIGURE2_SOURCE)


@pytest.fixture(scope="session")
def figure2_pag(figure2_program):
    return build_pag(figure2_program)


def make_pag(source, entry="Main.main"):
    """Parse + build in one step for inline test programs."""
    return build_pag(parse_program(source, entry=entry))
