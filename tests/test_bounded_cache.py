"""Tests for the bounded (LRU) summary cache and its composition with
method-granular invalidation and live analyses.

The load-bearing property throughout: a summary is a pure memo, so
*neither eviction nor invalidation may ever change an answer* — only the
cost of recomputing it.
"""

import pytest

from repro import (
    AnalysisConfig,
    BoundedSummaryCache,
    DynSum,
    IncrementalAnalysisSession,
    SummaryCache,
    build_pag,
    parse_program,
)
from repro.analysis.ppta import PptaResult
from repro.cfl.rsm import S1
from repro.cfl.stacks import EMPTY_STACK
from repro.pag.nodes import LocalNode

SOURCE = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }

class Kennel {
  field occupant;
  method put(a) { this.occupant = a; }
  method get() {
    r = this.occupant;
    return r;
  }
}

class Main {
  static method main() {
    dogHouse = new Kennel;
    catHouse = new Kennel;
    rex = new Dog;
    tom = new Cat;
    dogHouse.put(rex);
    catHouse.put(tom);
    d = dogHouse.get();
    c = catHouse.get();
  }
}
"""


def node(method="C.m", name="x"):
    return LocalNode(method, name)


def summary(n_objects=1):
    return PptaResult(tuple(f"o{i}" for i in range(n_objects)), ())


@pytest.fixture(scope="module")
def pag():
    return build_pag(parse_program(SOURCE))


class TestLruOrder:
    def test_evicts_least_recently_used(self):
        cache = BoundedSummaryCache(max_entries=2)
        a, b, c = node(name="a"), node(name="b"), node(name="c")
        cache.store(a, EMPTY_STACK, S1, summary())
        cache.store(b, EMPTY_STACK, S1, summary())
        cache.store(c, EMPTY_STACK, S1, summary())  # evicts a
        assert (a, EMPTY_STACK, S1) not in cache
        assert (b, EMPTY_STACK, S1) in cache
        assert (c, EMPTY_STACK, S1) in cache
        assert cache.evictions == 1

    def test_lookup_refreshes_recency(self):
        cache = BoundedSummaryCache(max_entries=2)
        a, b, c = node(name="a"), node(name="b"), node(name="c")
        cache.store(a, EMPTY_STACK, S1, summary())
        cache.store(b, EMPTY_STACK, S1, summary())
        cache.lookup(a, EMPTY_STACK, S1)  # a is now most recent
        cache.store(c, EMPTY_STACK, S1, summary())  # evicts b, not a
        assert (a, EMPTY_STACK, S1) in cache
        assert (b, EMPTY_STACK, S1) not in cache

    def test_duplicate_store_refreshes_recency(self):
        """Regression: re-storing a resident summary must refresh LRU
        recency — a hot, just-recomputed summary that happened to be
        stored twice used to stay in its stale slot and get evicted
        first."""
        cache = BoundedSummaryCache(max_entries=2)
        a, b, c = node(name="a"), node(name="b"), node(name="c")
        cache.store(a, EMPTY_STACK, S1, summary())
        cache.store(b, EMPTY_STACK, S1, summary())
        cache.store(a, EMPTY_STACK, S1, summary())  # a is now most recent
        cache.store(c, EMPTY_STACK, S1, summary())  # must evict b, not a
        assert (a, EMPTY_STACK, S1) in cache
        assert (b, EMPTY_STACK, S1) not in cache
        assert (c, EMPTY_STACK, S1) in cache
        # The duplicate store kept the store's accounting intact.
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_entries_iterate_lru_first(self):
        cache = BoundedSummaryCache(max_entries=3)
        a, b = node(name="a"), node(name="b")
        cache.store(a, EMPTY_STACK, S1, summary())
        cache.store(b, EMPTY_STACK, S1, summary())
        cache.lookup(a, EMPTY_STACK, S1)
        first_key, _ = next(iter(cache.entries()))
        assert first_key[0] is b


class TestSizeCaps:
    def test_entry_cap_enforced(self):
        cache = BoundedSummaryCache(max_entries=3)
        for i in range(10):
            cache.store(node(name=f"v{i}"), EMPTY_STACK, S1, summary())
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_fact_cap_enforced(self):
        cache = BoundedSummaryCache(max_facts=10)
        for i in range(10):
            cache.store(node(name=f"v{i}"), EMPTY_STACK, S1, summary(3))
        assert cache.total_facts() <= 10

    def test_single_oversized_entry_is_kept(self):
        cache = BoundedSummaryCache(max_facts=2)
        cache.store(node(name="big"), EMPTY_STACK, S1, summary(50))
        assert len(cache) == 1  # keeping it beats thrashing

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            BoundedSummaryCache(max_entries=0)
        with pytest.raises(ValueError):
            BoundedSummaryCache(max_facts=0)

    def test_stats_snapshot_accounting(self):
        cache = BoundedSummaryCache(max_entries=2)
        nodes = [node(name=f"v{i}") for i in range(4)]
        for key_node in nodes:
            cache.store(key_node, EMPTY_STACK, S1, summary(2))
        cache.lookup(nodes[3], EMPTY_STACK, S1)
        cache.lookup(nodes[0], EMPTY_STACK, S1)  # evicted -> miss
        snap = cache.stats_snapshot()
        assert snap.entries == 2
        assert snap.facts == 4
        assert snap.evictions == 2
        assert snap.hits == 1 and snap.misses == 1
        assert snap.hit_rate == 0.5
        assert snap.bounded and snap.max_entries == 2
        assert snap.approx_bytes > 0

    def test_spawn_preserves_policy(self):
        cache = BoundedSummaryCache(max_entries=5, max_facts=100)
        child = cache.spawn()
        assert isinstance(child, BoundedSummaryCache)
        assert child.max_entries == 5 and child.max_facts == 100
        assert len(child) == 0
        assert isinstance(SummaryCache().spawn(), SummaryCache)


class TestEvictionNeverChangesAnswers:
    def test_requery_after_eviction_equals_pre_eviction(self, pag):
        """Re-querying after (forced) eviction must reproduce the exact
        pre-eviction result: same pairs, same completeness."""
        unbounded = DynSum(pag, AnalysisConfig())
        tiny = DynSum(pag, AnalysisConfig(), cache=BoundedSummaryCache(max_entries=1))
        queries = [("Main.main", "d"), ("Main.main", "c"), ("Main.main", "rex")]
        baseline = {}
        for method, var in queries:
            baseline[(method, var)] = unbounded.points_to_name(method, var)
        # Two warm passes over the tiny cache: constant eviction churn.
        for _round in range(2):
            for method, var in queries:
                result = tiny.points_to_name(method, var)
                expected = baseline[(method, var)]
                assert result.pairs == expected.pairs, (method, var)
                assert result.complete == expected.complete
        assert tiny.cache.evictions > 0  # the cap actually bit

    def test_cap_holds_during_analysis(self, pag):
        cache = BoundedSummaryCache(max_entries=2)
        analysis = DynSum(pag, AnalysisConfig(), cache=cache)
        for var in ("d", "c"):
            analysis.points_to_name("Main.main", var)
            assert len(cache) <= 2


class TestInvalidationAndEviction:
    def test_invalidate_counts_only_resident_entries(self):
        """Entries the LRU policy already evicted are not double-counted
        (nor resurrected) by a later method invalidation."""
        cache = BoundedSummaryCache(max_entries=2)
        for i in range(5):
            cache.store(node("C.m", f"v{i}"), EMPTY_STACK, S1, summary())
        assert cache.evictions == 3
        assert cache.invalidate_method("C.m") == 2
        assert len(cache) == 0
        assert cache.invalidate_method("C.m") == 0

    def test_eviction_unindexes_method(self):
        cache = BoundedSummaryCache(max_entries=1)
        cache.store(node("C.m", "a"), EMPTY_STACK, S1, summary())
        cache.store(node("D.n", "b"), EMPTY_STACK, S1, summary())  # evicts C.m
        assert cache.invalidate_method("C.m") == 0
        assert cache.invalidate_method("D.n") == 1

    def test_invalidate_then_requery_same_answer(self, pag):
        cache = BoundedSummaryCache(max_entries=4)
        analysis = DynSum(pag, AnalysisConfig(), cache=cache)
        before = analysis.points_to_name("Main.main", "d")
        analysis.invalidate_method("Kennel.get")
        after = analysis.points_to_name("Main.main", "d")
        assert after.pairs == before.pairs

    def test_incremental_session_preserves_cache_policy(self):
        """An edit rebuilds the PAG; the migrated-into cache must keep
        the same bounds (spawn), and answers must be unchanged."""
        session = IncrementalAnalysisSession(
            parse_program(SOURCE), cache=BoundedSummaryCache(max_entries=8)
        )
        before = session.points_to_name("Main.main", "d")
        session.edit("Kennel.put", lambda method: None)
        cache = session.analysis.cache
        assert isinstance(cache, BoundedSummaryCache)
        assert cache.max_entries == 8
        after = session.points_to_name("Main.main", "d")
        # Node identity is per-PAG, so compare by stable labels.
        assert sorted(repr(o) for o in after.objects) == sorted(
            repr(o) for o in before.objects
        )
