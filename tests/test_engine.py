"""Tests for the engine layer: scheduler, policies, batch semantics.

The acceptance properties from the engine's design brief:

* ``query_batch`` over the Figure-4 workload produces **identical**
  points-to sets to sequential queries, while reporting a strictly
  higher summary-cache hit rate than cold per-query runs;
* a bounded cache honours its size cap without changing any answer.
"""

import pytest

from repro import (
    AnalysisConfig,
    BoundedSummaryCache,
    CachePolicy,
    DynSum,
    EnginePolicy,
    PointsToEngine,
    build_pag,
    parse_program,
)
from repro.bench.runner import bench_analysis_config
from repro.bench.suite import load_benchmark
from repro.clients import ALL_CLIENTS, SafeCastClient
from repro.engine import QuerySpec, as_spec, plan_batch, resolve_analysis
from repro.engine.scheduler import warmth_key
from repro.util.errors import IRError

SOURCE = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }

class Kennel {
  field occupant;
  method put(a) { this.occupant = a; }
  method get() {
    r = this.occupant;
    return r;
  }
}

class Main {
  static method main() {
    dogHouse = new Kennel;
    catHouse = new Kennel;
    rex = new Dog;
    tom = new Cat;
    dogHouse.put(rex);
    catHouse.put(tom);
    d = dogHouse.get();
    c = catHouse.get();
    sure = (Dog) d;
    oops = (Dog) c;
  }
}
"""


@pytest.fixture(scope="module")
def pag():
    return build_pag(parse_program(SOURCE))


@pytest.fixture(scope="module")
def figure4_instance():
    """One of the paper's Figure 4 programs (soot-c), test-sized."""
    return load_benchmark("soot-c", scale=0.5)


class TestScheduler:
    def test_dedupe_collapses_repeats(self, pag):
        d = pag.find_local("Main.main", "d")
        c = pag.find_local("Main.main", "c")
        plan = plan_batch([QuerySpec(d), QuerySpec(c), QuerySpec(d)])
        assert plan.n_requests == 3
        assert plan.n_unique == 2
        assert plan.n_deduped == 1
        assert plan.assignment[0] == plan.assignment[2]

    def test_no_dedupe_keeps_everything(self, pag):
        d = pag.find_local("Main.main", "d")
        plan = plan_batch([QuerySpec(d), QuerySpec(d)], dedupe=False)
        assert plan.n_unique == 2

    def test_reorder_groups_by_method(self, pag):
        specs = [
            QuerySpec(pag.find_local("Main.main", "d")),
            QuerySpec(pag.find_local("Kennel.get", "r")),
            QuerySpec(pag.find_local("Main.main", "c")),
        ]
        plan = plan_batch(specs, reorder=True)
        ordered = [warmth_key(plan.unique[i])[0] for i in plan.order]
        assert ordered == sorted(ordered)

    def test_no_reorder_preserves_order(self, pag):
        specs = [
            QuerySpec(pag.find_local("Main.main", "d")),
            QuerySpec(pag.find_local("Kennel.get", "r")),
        ]
        plan = plan_batch(specs, reorder=False)
        assert plan.order == [0, 1]
        assert not plan.reordered

    def test_untokenised_predicates_never_merge(self, pag):
        d = pag.find_local("Main.main", "d")
        plan = plan_batch(
            [QuerySpec(d, client=lambda objs: True), QuerySpec(d, client=lambda objs: False)]
        )
        assert plan.n_unique == 2

    def test_tokenised_predicates_merge_on_token(self, pag):
        d = pag.find_local("Main.main", "d")
        specs = [
            QuerySpec(d, client=lambda objs: True, token=("SafeCast", ("Dog",))),
            QuerySpec(d, client=lambda objs: True, token=("SafeCast", ("Dog",))),
            QuerySpec(d, client=lambda objs: True, token=("SafeCast", ("Cat",))),
        ]
        plan = plan_batch(specs, include_client=True)
        assert plan.n_unique == 2
        # Predicate-blind analyses may merge all three:
        assert plan_batch(specs, include_client=False).n_unique == 1

    def test_as_spec_normalises(self, pag):
        d = pag.find_local("Main.main", "d")
        assert as_spec(d, pag).node is d
        assert as_spec(("Main.main", "d"), pag).node is d
        spec = QuerySpec(d)
        assert as_spec(spec, pag) is spec
        query = SafeCastClient(pag).queries()[0]
        from_query = as_spec(query, pag)
        assert from_query.origin is query
        assert from_query.token == (query.client, query.payload)

    def test_as_spec_rejects_mixed_tuple(self, pag):
        """Regression: ("A.m", context_stack) used to slip through as a
        QuerySpec whose node was the bare string, deferring the failure
        to an AttributeError deep inside the traversal."""
        from repro.cfl.stacks import EMPTY_STACK

        with pytest.raises(IRError) as exc:
            as_spec(("Main.main", EMPTY_STACK), pag)
        message = str(exc.value)
        assert "cannot normalise batch item" in message
        assert "(method_qname, var_name)" in message
        assert "pag.find_local" in message
        # The engine surfaces the same clear error, not an AttributeError.
        with pytest.raises(IRError, match="cannot normalise batch item"):
            PointsToEngine(pag).query(("Main.main", EMPTY_STACK))


class TestPolicy:
    def test_resolve_analysis_names(self):
        assert resolve_analysis("dynsum").name == "DYNSUM"
        assert resolve_analysis("RefinePts").name == "REFINEPTS"
        with pytest.raises(KeyError):
            resolve_analysis("quake3")

    def test_cache_policy_selects_store(self):
        from repro import SummaryCache

        assert isinstance(CachePolicy().make_store(), SummaryCache)
        bounded = CachePolicy(max_entries=4).make_store()
        assert isinstance(bounded, BoundedSummaryCache)
        assert bounded.max_entries == 4

    def test_cache_policy_shards(self):
        from repro import ShardedSummaryCache

        store = CachePolicy(shards=4).make_store()
        assert isinstance(store, ShardedSummaryCache)
        assert store.n_shards == 4
        # Auto-sharding from the engine's parallelism clamps to the caps…
        auto = CachePolicy(max_entries=2).make_store(default_shards=4)
        assert isinstance(auto, ShardedSummaryCache)
        assert auto.n_shards == 2
        # …but an explicit shard count the caps cannot feed is an error.
        with pytest.raises(ValueError):
            CachePolicy(max_entries=2, shards=4).make_store()

    def test_engine_policy_parallelism(self, monkeypatch):
        from repro.engine.executor import (
            PARALLELISM_ENV,
            ParallelExecutor,
            SequentialExecutor,
        )

        assert isinstance(
            EnginePolicy(parallelism=1).make_executor(), SequentialExecutor
        )
        executor = EnginePolicy(parallelism=3).make_executor()
        assert isinstance(executor, ParallelExecutor)
        assert executor.parallelism == 3
        # Unset parallelism defers to the environment override.
        monkeypatch.setenv(PARALLELISM_ENV, "2")
        assert EnginePolicy().effective_parallelism() == 2
        assert EnginePolicy(parallelism=5).effective_parallelism() == 5
        monkeypatch.delenv(PARALLELISM_ENV)
        assert EnginePolicy().effective_parallelism() == 1

    def test_engine_per_analysis(self, pag):
        for name in ("DYNSUM", "STASUM", "REFINEPTS", "NOREFINE"):
            engine = PointsToEngine(pag, EnginePolicy(analysis=name))
            result = engine.query_name("Main.main", "d")
            assert sorted(o.class_name for o in result.objects) == ["Dog"]
        # CIPTA is context-insensitive: the two kennels conflate.
        cipta = PointsToEngine(pag, EnginePolicy(analysis="CIPTA"))
        merged = cipta.query_name("Main.main", "d")
        assert sorted(o.class_name for o in merged.objects) == ["Cat", "Dog"]

    def test_exactly_one_source_required(self, pag):
        with pytest.raises(IRError):
            PointsToEngine()
        with pytest.raises(IRError):
            PointsToEngine(pag, analysis=DynSum(pag))


class TestEngineBasics:
    def test_query_matches_analysis(self, pag):
        engine = PointsToEngine(pag)
        direct = DynSum(pag).points_to_name("Main.main", "d")
        assert engine.query_name("Main.main", "d").pairs == direct.pairs

    def test_alias(self, pag):
        engine = PointsToEngine(pag)
        assert engine.alias(("Main.main", "d"), ("Main.main", "rex")).verdict is True
        assert engine.alias(("Main.main", "d"), ("Main.main", "tom")).verdict is False

    def test_batch_results_align_with_requests(self, pag):
        engine = PointsToEngine(pag)
        batch = engine.query_batch(
            [("Main.main", "c"), ("Main.main", "d"), ("Main.main", "c")]
        )
        classes = [sorted(o.class_name for o in r.objects) for r in batch]
        assert classes == [["Cat"], ["Dog"], ["Cat"]]
        assert batch.results[0] is batch.results[2]  # deduplicated
        assert batch.stats.n_deduped == 1

    def test_run_client_matches_direct_run(self, pag):
        engine = PointsToEngine(pag)
        verdicts, batch = engine.run_client(SafeCastClient)
        direct = SafeCastClient(pag).run(DynSum(pag))
        assert [v.status for v in verdicts] == [v.status for v in direct]
        assert batch.stats.n_requests == len(direct)

    def test_invalidate_method(self, pag):
        engine = PointsToEngine(pag)
        before = engine.query_name("Main.main", "d")
        assert engine.invalidate_method("Kennel.get") > 0
        assert engine.query_name("Main.main", "d").pairs == before.pairs
        # Cache-less analyses no-op instead of failing:
        assert PointsToEngine(pag, EnginePolicy(analysis="NOREFINE")).invalidate_method(
            "Kennel.get"
        ) == 0

    def test_stats_snapshot(self, pag):
        engine = PointsToEngine(pag)
        engine.query_name("Main.main", "d")
        engine.query_batch([("Main.main", "d"), ("Main.main", "d")])
        stats = engine.stats()
        assert stats.analysis == "DYNSUM"
        assert stats.queries == 3
        assert stats.executed == 2  # batch deduped to one traversal
        assert stats.batches == 1
        assert stats.deduped == 1
        assert stats.cache is not None and stats.cache.entries > 0

    def test_edit_session_requires_program(self, pag):
        with pytest.raises(IRError):
            PointsToEngine(pag).edit_session()

    def test_edit_session_flow(self):
        engine = PointsToEngine.for_program(parse_program(SOURCE))
        session = engine.edit_session()
        before = engine.query_name("Main.main", "d")
        steps_before_edit = engine.stats().steps
        assert steps_before_edit > 0
        report = session.edit("Kennel.put", lambda method: None)
        assert session.edit_count == 1
        assert report.migrated > 0
        after = engine.query_name("Main.main", "d")
        assert sorted(repr(o) for o in after.objects) == sorted(
            repr(o) for o in before.objects
        )
        stats = engine.stats()
        assert stats.edits == 1
        # Lifetime accounting survives the analysis swap an edit performs.
        assert stats.steps > steps_before_edit
        assert stats.queries == 2

    def test_wrap_does_not_inherit_pre_engine_traffic(self, pag):
        analysis = DynSum(pag)
        analysis.points_to_name("Main.main", "d")  # pre-engine traffic
        engine = PointsToEngine.wrap(analysis)
        assert engine.stats().steps == 0
        engine.query_name("Main.main", "c")
        assert 0 < engine.stats().steps < analysis.total_steps


def _workload(instance, client_cls):
    client = client_cls(instance.pag)
    return client, client.queries()


class TestAcceptance:
    """The engine's contract over a Figure-4 workload."""

    @pytest.mark.parametrize("client_cls", ALL_CLIENTS, ids=lambda c: c.name)
    def test_batch_equals_sequential(self, figure4_instance, client_cls):
        """Batched answers (dedup + reorder + shared cache) are identical
        to one-at-a-time queries on a fresh analysis."""
        instance = figure4_instance
        client, queries = _workload(instance, client_cls)

        engine = PointsToEngine(
            instance.pag, EnginePolicy(max_field_depth=16)
        )
        verdicts, batch = engine.run_client(client, queries)

        sequential = DynSum(instance.pag, bench_analysis_config())
        for query, batched in zip(queries, batch.results):
            reference = sequential.points_to(
                query.node(instance.pag), client=client.predicate(query)
            )
            assert batched.pairs == reference.pairs, query
            assert batched.complete == reference.complete, query
        assert [v.status for v in verdicts] == [
            v.status for v in client.run(DynSum(instance.pag, bench_analysis_config()))
        ]

    def test_batch_hit_rate_beats_cold_per_query(self, figure4_instance):
        """The shared-cache batch must report a strictly higher summary
        hit rate than cold per-query runs (fresh cache every query)."""
        instance = figure4_instance
        client, queries = _workload(instance, SafeCastClient)

        engine = PointsToEngine(instance.pag, EnginePolicy(max_field_depth=16))
        _verdicts, batch = engine.run_client(client, queries)

        cold_hits = cold_probes = 0
        for query in queries:
            cold = DynSum(instance.pag, bench_analysis_config())
            cold.points_to(query.node(instance.pag), client=client.predicate(query))
            cold_hits += cold.cache.hits
            cold_probes += cold.cache.hits + cold.cache.misses
        cold_rate = cold_hits / cold_probes if cold_probes else 0.0

        assert batch.stats.probes > 0
        assert batch.stats.hit_rate > cold_rate

    def test_bounded_cache_honours_cap_without_changing_answers(
        self, figure4_instance
    ):
        instance = figure4_instance
        client, queries = _workload(instance, SafeCastClient)

        cap = 32
        bounded_engine = PointsToEngine(
            instance.pag,
            EnginePolicy(max_field_depth=16, cache=CachePolicy(max_entries=cap)),
        )
        _verdicts, bounded = bounded_engine.run_client(client, queries)
        assert len(bounded_engine.cache) <= cap
        assert bounded_engine.cache.evictions > 0  # the cap actually bit

        reference = DynSum(instance.pag, bench_analysis_config())
        for query, result in zip(queries, bounded.results):
            expected = reference.points_to(
                query.node(instance.pag), client=client.predicate(query)
            )
            assert result.pairs == expected.pairs, query
